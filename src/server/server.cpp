#include "server/server.hpp"

#include <algorithm>
#include <chrono>

#include "pirte/package.hpp"
#include "support/log.hpp"
#include "support/string_util.hpp"

namespace dacm::server {

namespace {

/// FNV-1a; stable across platforms so shard placement (and with it the
/// deterministic drain order of a campaign) never depends on the standard
/// library's std::hash.
std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t hash = 1469598103934665603ull;
  for (char c : s) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Status-DB encoding of an in-memory InstallState (the paragraph written
/// when a push fails and the row snaps back to its previous state).
Want WantFor(InstallState state) {
  return state == InstallState::kUninstalling ? Want::kDeinstall : Want::kInstall;
}

DbState DbStateFor(InstallState state) {
  switch (state) {
    case InstallState::kPending: return DbState::kHalfInstalled;
    case InstallState::kInstalled: return DbState::kInstalled;
    case InstallState::kFailed: return DbState::kErrorState;
    case InstallState::kUninstalling: return DbState::kHalfRemoved;
  }
  return DbState::kErrorState;
}

}  // namespace

std::string_view InstallStateName(InstallState state) {
  switch (state) {
    case InstallState::kPending: return "pending";
    case InstallState::kInstalled: return "installed";
    case InstallState::kFailed: return "failed";
    case InstallState::kUninstalling: return "uninstalling";
  }
  return "?";
}

TrustedServer::TrustedServer(sim::Network& network, std::string address,
                             ServerOptions options)
    : network_(network),
      address_(std::move(address)),
      options_(options),
      shards_(options.shard_count == 0 ? 1 : options.shard_count),
      // One worker per shard; the simulation thread only coordinates, so
      // every campaign send goes through the deterministic staged path.
      pool_(shards_.size() == 1 ? 0 : shards_.size()) {
  if (options_.status_sink != nullptr) {
    status_db_ = std::make_unique<StatusDb>(*options_.status_sink);
  }
}

TrustedServer::~TrustedServer() {
  // Disarm first: scheduled callbacks holding the weak alive_ token
  // (accept handler, ack flush, in-flight SYNs) see it expired and go
  // inert instead of dereferencing a dead server.
  alive_.reset();
  if (started_) (void)network_.Unlisten(address_);
  // Drop receive handlers before closing: a delivery already scheduled
  // for a later timestamp null-checks the handler and is absorbed.
  for (Shard& shard : shards_) {
    for (auto& [vin, peers] : shard.connections) {
      for (const std::shared_ptr<sim::NetPeer>& peer : peers) {
        peer->SetReceiveHandler(nullptr);
        peer->Close();
      }
    }
    shard.connections.clear();
  }
  for (const std::shared_ptr<sim::NetPeer>& peer : pending_) {
    peer->SetReceiveHandler(nullptr);
    peer->Close();
  }
  pending_.clear();
}

std::size_t TrustedServer::ShardIndex(std::string_view vin) const {
  return shards_.size() == 1 ? 0 : Fnv1a(vin) % shards_.size();
}

TrustedServer::Shard& TrustedServer::ShardFor(std::string_view vin) {
  return shards_[ShardIndex(vin)];
}

const TrustedServer::Shard& TrustedServer::ShardFor(std::string_view vin) const {
  return shards_[ShardIndex(vin)];
}

support::Status TrustedServer::Start() {
  if (started_) return support::FailedPrecondition("server already started");
  // The SYN event copies this handler, so it can fire after the listener
  // is gone (server killed with a connect in flight) — the alive token
  // turns that into a no-op.
  DACM_RETURN_IF_ERROR(network_.Listen(
      address_, [this, alive = std::weak_ptr<const bool>(alive_)](
                    std::shared_ptr<sim::NetPeer> peer) {
        if (alive.expired()) return;
        OnAccept(std::move(peer));
      }));
  started_ = true;
  return support::OkStatus();
}

// --- user setup -------------------------------------------------------------------

support::Result<UserId> TrustedServer::CreateUser(const std::string& name) {
  std::unique_lock lock(catalog_mutex_);
  for (const User& user : users_) {
    if (user.name == name) return support::AlreadyExists("user: " + name);
  }
  users_.push_back(User{name, {}});
  return UserId(static_cast<std::uint32_t>(users_.size() - 1));
}

support::Status TrustedServer::BindVehicle(UserId user, const std::string& vin,
                                           const std::string& model) {
  std::unique_lock lock(catalog_mutex_);
  if (user.value() >= users_.size()) return support::NotFound("unknown user");
  Shard& shard = ShardFor(vin);
  if (shard.vehicles.contains(vin)) {
    return support::AlreadyExists("VIN already bound: " + vin);
  }
  if (!models_.contains(model)) return support::NotFound("vehicle model: " + model);
  Vehicle vehicle;
  vehicle.vin = vin;
  vehicle.model = model;
  vehicle.owner = user;
  shard.vehicles.emplace(vin, std::move(vehicle));
  users_[user.value()].vins.push_back(vin);
  return support::OkStatus();
}

// --- uploads -----------------------------------------------------------------------

support::Status TrustedServer::UploadVehicleModel(VehicleModelConf conf) {
  if (conf.model.empty()) return support::InvalidArgument("model name empty");
  std::unique_lock lock(catalog_mutex_);
  models_[conf.model] = std::move(conf);
  return support::OkStatus();
}

support::Status TrustedServer::UploadApp(App app) {
  if (app.name.empty()) return support::InvalidArgument("app name empty");
  if (app.plugins.empty()) return support::InvalidArgument("app has no plug-ins");
  std::unique_lock lock(catalog_mutex_);
  auto it = apps_.find(app.name);
  if (it != apps_.end() &&
      support::CompareVersions(app.version, it->second.version) <= 0) {
    return support::AlreadyExists("app " + app.name + " v" + it->second.version +
                                  " already stored with same or newer version");
  }
  apps_[app.name] = std::move(app);
  return support::OkStatus();
}

// --- operations -----------------------------------------------------------------------

support::Status TrustedServer::DeployOnShard(Shard& shard, UserId user,
                                             const std::string& vin,
                                             const App& app, bool batched) {
  auto vehicle_it = shard.vehicles.find(vin);
  if (vehicle_it == shard.vehicles.end()) return support::NotFound("VIN: " + vin);
  Vehicle* vehicle = &vehicle_it->second;
  DACM_RETURN_IF_ERROR(CheckOwnership(user, *vehicle));
  if (vehicle->FindInstalled(app.name) != nullptr) {
    ++shard.stats.deploys_rejected;
    return support::AlreadyExists("app already installed: " + app.name);
  }

  // Compatibility: a SW conf for this vehicle model must exist...
  const SwConf* conf = app.ConfForModel(vehicle->model);
  if (conf == nullptr) {
    ++shard.stats.deploys_rejected;
    return support::Incompatible("no SW conf for vehicle model " + vehicle->model);
  }
  DACM_ASSIGN_OR_RETURN(const VehicleModelConf* model, ModelConf(vehicle->model));
  // ...the platform must be recent enough...
  if (!conf->min_platform.empty() &&
      support::CompareVersions(model->sw.platform_version, conf->min_platform) < 0) {
    ++shard.stats.deploys_rejected;
    return support::Incompatible("platform " + model->sw.platform_version +
                                 " older than required " + conf->min_platform);
  }
  // ...every required virtual port must be exposed...
  for (const std::string& required : conf->required_virtual_ports) {
    if (model->sw.FindByName(required) == nullptr) {
      ++shard.stats.deploys_rejected;
      return support::Incompatible("vehicle lacks required virtual port " + required);
    }
  }
  // ...placements must target plug-in-capable ECUs...
  for (const PlacementDecl& placement : conf->placements) {
    const EcuInfo* ecu = model->hw.FindEcu(placement.ecu_id);
    if (ecu == nullptr || !ecu->has_plugin_swc) {
      ++shard.stats.deploys_rejected;
      return support::Incompatible("ECU " + std::to_string(placement.ecu_id) +
                                   " cannot host plug-ins");
    }
  }
  // ...then dependencies: pre-requisite apps must be installed...
  for (const std::string& dependency : app.depends_on) {
    const InstalledApp* installed = vehicle->FindInstalled(dependency);
    if (installed == nullptr || installed->state != InstallState::kInstalled) {
      ++shard.stats.deploys_rejected;
      return support::DependencyViolation("requires app " + dependency +
                                          " to be installed first");
    }
  }
  // ...and no conflicts in either direction.
  for (const std::string& conflict : app.conflicts_with) {
    if (vehicle->FindInstalled(conflict) != nullptr) {
      ++shard.stats.deploys_rejected;
      return support::DependencyViolation("conflicts with installed app " + conflict);
    }
  }
  for (const InstalledApp& installed : vehicle->installed) {
    auto other = apps_.find(installed.app_name);
    if (other == apps_.end()) continue;
    const auto& conflicts = other->second.conflicts_with;
    if (std::find(conflicts.begin(), conflicts.end(), app.name) != conflicts.end()) {
      ++shard.stats.deploys_rejected;
      return support::DependencyViolation("installed app " + installed.app_name +
                                          " conflicts with " + app.name);
    }
  }

  // The Pusher needs a live connection; reject before any state changes so
  // a retry starts from a clean table.
  auto connections_it = shard.connections.find(vin);
  const bool online =
      connections_it != shard.connections.end() &&
      std::any_of(connections_it->second.begin(), connections_it->second.end(),
                  [](const auto& peer) { return peer->connected(); });
  if (!online) {
    ++shard.stats.deploys_rejected;
    return support::Unavailable("vehicle offline: " + vin);
  }

  // Context generation, allocating unique ids from the vehicle's
  // persistent per-ECU bitmap (no rescan of the InstalledAPP table).
  DACM_ASSIGN_OR_RETURN(auto generated,
                        GeneratePackages(app, *conf, model->sw, vehicle->port_ids));

  // Record + push.
  InstalledApp record;
  record.app_name = app.name;
  record.version = app.version;
  record.state = InstallState::kPending;
  for (GeneratedPackage& gp : generated) {
    InstalledApp::PluginRecord plugin;
    plugin.plugin = gp.plugin;
    plugin.ecu_id = gp.ecu_id;
    plugin.pic = gp.package.pic;
    plugin.package_bytes = gp.package.Serialize();
    record.plugins.push_back(std::move(plugin));
  }
  vehicle->installed.push_back(std::move(record));
  InstalledApp& row = vehicle->installed.back();
  // Write-ahead: the half-installed paragraph hits the status DB before
  // the push leaves, so a crash between push and ack recovers into a
  // retriable kPending row instead of a silently lost deploy.
  WriteStatus(*vehicle, row, Want::kInstall, DbState::kHalfInstalled);

  auto rollback = [&](const support::Status& error) {
    // Roll back the uncommitted row: a failed deploy must leave no trace
    // (a stale row would block retries and leak unique ids).  The
    // tombstone undoes the write-ahead paragraph above.
    WriteStatusRemoved(vin, app.name, app.version, Want::kInstall);
    ReleaseRowIds(*vehicle, vehicle->installed.back());
    vehicle->installed.pop_back();
    ++shard.stats.deploys_rejected;
    return error;
  };

  if (batched) {
    // Campaign path: one push carrying every plug-in package, assembled
    // from views over the freshly recorded package bytes.  The serialized
    // envelope is recorded on the row so retry waves re-push it verbatim.
    std::vector<pirte::InstallBatchEntry> entries;
    entries.reserve(row.plugins.size());
    for (const InstalledApp::PluginRecord& plugin : row.plugins) {
      entries.push_back(pirte::InstallBatchEntry{plugin.plugin, plugin.ecu_id,
                                                 plugin.package_bytes});
    }
    pirte::PirteMessage batch;
    batch.type = pirte::MessageType::kInstallBatch;
    batch.plugin_name = app.name;  // diagnostic label for nack paths
    batch.payload = pirte::SerializeInstallBatch(entries);
    row.push_bytes = support::SharedBytes(pirte::SerializeEnveloped(vin, batch));
    auto push = PushWireToVehicle(shard, vin, row.push_bytes);
    if (!push.ok()) return rollback(push);
  } else {
    for (const InstalledApp::PluginRecord& plugin : row.plugins) {
      pirte::PirteMessage message;
      message.type = pirte::MessageType::kInstallPackage;
      message.plugin_name = plugin.plugin;
      message.target_ecu = plugin.ecu_id;
      message.payload = plugin.package_bytes;
      auto push = PushToVehicle(shard, vin, message);
      if (!push.ok()) return rollback(push);
    }
  }
  ++shard.stats.deploys_ok;
  DACM_LOG_INFO("server") << "deploy " << app.name << " -> " << vin << " ("
                          << row.plugins.size() << " plug-ins"
                          << (batched ? ", batched)" : ")");
  return support::OkStatus();
}

support::Status TrustedServer::Deploy(UserId user, const std::string& vin,
                                      const std::string& app_name) {
  std::shared_lock lock(catalog_mutex_);
  Shard& shard = ShardFor(vin);
  auto app_it = apps_.find(app_name);
  if (app_it == apps_.end()) {
    // Match the historic accounting: an unknown app only counts as a
    // rejection when the vehicle at least exists.
    if (shard.vehicles.contains(vin)) ++shard.stats.deploys_rejected;
    return support::NotFound("app: " + app_name);
  }
  return DeployOnShard(shard, user, vin, app_it->second, /*batched=*/false);
}

support::Result<CampaignReport> TrustedServer::DeployCampaign(
    UserId user, const std::string& app_name, std::span<const std::string> vins) {
  std::shared_lock lock(catalog_mutex_);
  auto app_it = apps_.find(app_name);
  if (app_it == apps_.end()) return support::NotFound("app: " + app_name);
  const App& app = app_it->second;

  // Partition the fleet so every worker touches exactly one shard.
  std::vector<std::vector<const std::string*>> by_shard(shards_.size());
  for (const std::string& vin : vins) {
    by_shard[ShardIndex(vin)].push_back(&vin);
  }

  struct ShardOutcome {
    std::vector<std::pair<std::string, support::Status>> failures;
    std::vector<std::uint64_t> ns;
  };
  std::vector<ShardOutcome> outcomes(shards_.size());

  pool_.ParallelFor(shards_.size(), [&](std::size_t index) {
    Shard& shard = shards_[index];
    ShardOutcome& outcome = outcomes[index];
    outcome.ns.reserve(by_shard[index].size());
    for (const std::string* vin : by_shard[index]) {
      const auto start = std::chrono::steady_clock::now();
      auto status = DeployOnShard(shard, user, *vin, app, /*batched=*/true);
      outcome.ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
      if (!status.ok()) outcome.failures.emplace_back(*vin, std::move(status));
    }
  });

  CampaignReport report;
  report.per_vehicle_ns.reserve(vins.size());
  for (ShardOutcome& outcome : outcomes) {
    report.rejected += outcome.failures.size();
    for (auto& failure : outcome.failures) {
      report.failures.push_back(std::move(failure));
    }
    report.per_vehicle_ns.insert(report.per_vehicle_ns.end(), outcome.ns.begin(),
                                 outcome.ns.end());
  }
  report.deployed = vins.size() - report.rejected;
  return report;
}

namespace {

WaveOutcome ClassifyPush(support::Status status) {
  if (status.ok()) return WaveOutcome{WaveOutcome::Action::kPushed, {}};
  const auto action = status.code() == support::ErrorCode::kUnavailable
                          ? WaveOutcome::Action::kOffline
                          : WaveOutcome::Action::kRejected;
  return WaveOutcome{action, std::move(status)};
}

}  // namespace

std::vector<WaveOutcome> TrustedServer::CampaignWavePush(
    UserId user, const std::string& app_name, CampaignKind kind,
    std::span<const std::string> vins) {
  std::vector<WaveOutcome> outcomes(vins.size());
  std::shared_lock lock(catalog_mutex_);
  const App* app = nullptr;
  if (kind == CampaignKind::kDeploy) {
    auto app_it = apps_.find(app_name);
    if (app_it == apps_.end()) {
      for (WaveOutcome& outcome : outcomes) {
        outcome = WaveOutcome{WaveOutcome::Action::kRejected,
                              support::NotFound("app: " + app_name)};
      }
      return outcomes;
    }
    app = &app_it->second;
  }

  // Same shard discipline as DeployCampaign: one worker per shard, each
  // writing disjoint outcome slots (indexed by fleet position, so the
  // result keeps the caller's order).
  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  for (std::size_t i = 0; i < vins.size(); ++i) {
    by_shard[ShardIndex(vins[i])].push_back(i);
  }
  pool_.ParallelFor(shards_.size(), [&](std::size_t index) {
    Shard& shard = shards_[index];
    for (std::size_t i : by_shard[index]) {
      outcomes[i] = WavePushOnShard(shard, user, vins[i], app_name, app, kind);
    }
  });
  return outcomes;
}

WaveOutcome TrustedServer::WavePushOnShard(Shard& shard, UserId user,
                                           const std::string& vin,
                                           const std::string& app_name,
                                           const App* app, CampaignKind kind) {
  auto vehicle_it = shard.vehicles.find(vin);
  if (vehicle_it == shard.vehicles.end()) {
    return WaveOutcome{WaveOutcome::Action::kRejected,
                       support::NotFound("VIN: " + vin)};
  }
  Vehicle& vehicle = vehicle_it->second;
  if (auto owned = CheckOwnership(user, vehicle); !owned.ok()) {
    return WaveOutcome{WaveOutcome::Action::kRejected, std::move(owned)};
  }

  if (kind == CampaignKind::kRollback) {
    InstalledApp* row = vehicle.FindInstalled(app_name);
    if (row == nullptr) return WaveOutcome{WaveOutcome::Action::kAlreadyDone, {}};
    if (std::string dependents = DependentsOf(vehicle, app_name);
        !dependents.empty()) {
      return WaveOutcome{
          WaveOutcome::Action::kRejected,
          support::DependencyViolation("apps depending on " + app_name +
                                       " must be uninstalled first: " +
                                       dependents)};
    }
    // One kUninstallBatch per vehicle — the kInstallBatch framing in
    // reverse.  Ack flags reset so a repeated wave (lost acks) converges.
    const InstallState previous = row->state;
    for (InstalledApp::PluginRecord& plugin : row->plugins) {
      plugin.acked = false;
      plugin.ack_ok = false;
      plugin.ack_detail.clear();
    }
    // Write-ahead: half-removed before the uninstall batch leaves.
    WriteStatus(vehicle, *row, Want::kDeinstall, DbState::kHalfRemoved);
    row->state = InstallState::kUninstalling;
    if (row->uninstall_bytes.empty()) {
      // First rollback wave for this row: serialize the batch once; a
      // repeated wave (lost acks, nacked uninstall) re-pushes the same
      // buffer by refcount.
      std::vector<pirte::UninstallBatchEntry> entries;
      entries.reserve(row->plugins.size());
      for (const InstalledApp::PluginRecord& plugin : row->plugins) {
        entries.push_back(
            pirte::UninstallBatchEntry{plugin.plugin, plugin.ecu_id});
      }
      pirte::PirteMessage batch;
      batch.type = pirte::MessageType::kUninstallBatch;
      batch.plugin_name = app_name;  // diagnostic label for nack paths
      batch.payload = pirte::SerializeUninstallBatch(entries);
      row->uninstall_bytes =
          support::SharedBytes(pirte::SerializeEnveloped(vin, batch));
    }
    auto push = PushWireToVehicle(shard, vin, row->uninstall_bytes);
    if (!push.ok()) {
      row->state = previous;
      // Undo the write-ahead: re-record the state the row snapped back to.
      WriteStatus(vehicle, *row, WantFor(previous), DbStateFor(previous));
      return ClassifyPush(std::move(push));
    }
    ++shard.stats.rollback_pushes;
    return WaveOutcome{WaveOutcome::Action::kPushed, {}};
  }

  // Deploy wave.
  if (InstalledApp* row = vehicle.FindInstalled(app_name); row != nullptr) {
    switch (row->state) {
      case InstallState::kInstalled:
        return WaveOutcome{WaveOutcome::Action::kAlreadyDone, {}};
      case InstallState::kUninstalling:
        return WaveOutcome{
            WaveOutcome::Action::kRejected,
            support::FailedPrecondition("uninstall of " + app_name +
                                        " in progress on " + vin)};
      case InstallState::kPending:
        // Pushed in an earlier wave but the acks never came back (link
        // flap): re-push the recorded batch verbatim.
        return ClassifyPush(RepushInstallBatch(shard, vehicle, *row));
      case InstallState::kFailed: {
        // A nacked row blocks redeployment; clear it (releasing its
        // unique ids) and fall through to a fresh deploy.
        WriteStatusRemoved(vin, row->app_name, row->version, Want::kInstall);
        ReleaseRowIds(vehicle, *row);
        const auto index =
            static_cast<std::ptrdiff_t>(row - vehicle.installed.data());
        vehicle.installed.erase(vehicle.installed.begin() + index);
        break;
      }
    }
  }
  return ClassifyPush(DeployOnShard(shard, user, vin, *app, /*batched=*/true));
}

support::Status TrustedServer::RepushInstallBatch(Shard& shard,
                                                  Vehicle& vehicle,
                                                  InstalledApp& row) {
  // A recovered row carries no package bytes (RecoverInstallDb persists
  // ids, not payloads), and a convergence race can leave a row whose
  // recorded envelope was already dropped.  Regenerate from the catalog
  // before assembling the wire — never push an empty batch.
  const bool packages_missing =
      row.plugins.empty() ||
      std::any_of(row.plugins.begin(), row.plugins.end(),
                  [](const InstalledApp::PluginRecord& plugin) {
                    return plugin.package_bytes.empty();
                  });
  if (packages_missing) {
    DACM_RETURN_IF_ERROR(MaterializeRowPackages(vehicle, row));
    row.push_bytes = {};  // stale envelope (if any) referenced old payloads
  }
  for (InstalledApp::PluginRecord& plugin : row.plugins) {
    plugin.acked = false;
    plugin.ack_ok = false;
    plugin.ack_detail.clear();
  }
  if (row.push_bytes.empty()) {
    // No recorded batch (e.g. the pending row came from a per-plug-in
    // Restore): assemble and record it once; later waves reuse it.
    std::vector<pirte::InstallBatchEntry> entries;
    entries.reserve(row.plugins.size());
    for (const InstalledApp::PluginRecord& plugin : row.plugins) {
      entries.push_back(pirte::InstallBatchEntry{plugin.plugin, plugin.ecu_id,
                                                 plugin.package_bytes});
    }
    pirte::PirteMessage batch;
    batch.type = pirte::MessageType::kInstallBatch;
    batch.plugin_name = row.app_name;
    batch.payload = pirte::SerializeInstallBatch(entries);
    row.push_bytes =
        support::SharedBytes(pirte::SerializeEnveloped(vehicle.vin, batch));
  }
  DACM_RETURN_IF_ERROR(PushWireToVehicle(shard, vehicle.vin, row.push_bytes));
  ++shard.stats.repushes;
  return support::OkStatus();
}

support::Status TrustedServer::MaterializeRowPackages(Vehicle& vehicle,
                                                      InstalledApp& row) {
  auto app_it = apps_.find(row.app_name);
  if (app_it == apps_.end()) {
    return support::NotFound("app " + row.app_name +
                             " not in catalog (re-upload before resuming)");
  }
  const App& app = app_it->second;
  const SwConf* conf = app.ConfForModel(vehicle.model);
  if (conf == nullptr) {
    return support::Incompatible("no SW conf for vehicle model " +
                                 vehicle.model);
  }
  DACM_ASSIGN_OR_RETURN(const VehicleModelConf* model, ModelConf(vehicle.model));
  // Free the recorded claims so generation can re-allocate; with no other
  // churn since the original deploy the lowest-free allocator reproduces
  // the exact ids the vehicle already holds.
  ReleaseRowIds(vehicle, row);
  auto generated = GeneratePackages(app, *conf, model->sw, vehicle.port_ids);
  if (!generated.ok()) {
    // Put the recorded claims back: the bitmap must stay consistent with
    // the (unchanged) row.
    for (const InstalledApp::PluginRecord& plugin : row.plugins) {
      for (const pirte::PicEntry& entry : plugin.pic.entries) {
        vehicle.port_ids[plugin.ecu_id].insert(entry.unique_id);
      }
    }
    return generated.status();
  }
  row.plugins.clear();
  for (GeneratedPackage& gp : *generated) {
    InstalledApp::PluginRecord plugin;
    plugin.plugin = gp.plugin;
    plugin.ecu_id = gp.ecu_id;
    plugin.pic = gp.package.pic;
    plugin.package_bytes = gp.package.Serialize();
    row.plugins.push_back(std::move(plugin));
  }
  row.version = app.version;
  // Re-record the paragraph: the regenerated ids may differ from the
  // recorded ones if the bitmap shifted underneath (another app released
  // lower ids since the original deploy).
  WriteStatus(vehicle, row, WantFor(row.state), DbStateFor(row.state));
  return support::OkStatus();
}

support::Status TrustedServer::UninstallApp(UserId user, const std::string& vin,
                                            const std::string& app_name) {
  std::shared_lock lock(catalog_mutex_);
  Shard& shard = ShardFor(vin);
  auto vehicle_it = shard.vehicles.find(vin);
  if (vehicle_it == shard.vehicles.end()) return support::NotFound("VIN: " + vin);
  Vehicle* vehicle = &vehicle_it->second;
  DACM_RETURN_IF_ERROR(CheckOwnership(user, *vehicle));
  InstalledApp* installed = vehicle->FindInstalled(app_name);
  if (installed == nullptr) return support::NotFound("app not installed: " + app_name);

  // "whether there are some other installed plug-ins that are dependent on
  // the plug-ins being uninstalled" — the user is notified, not cascaded.
  if (std::string dependents = DependentsOf(*vehicle, app_name);
      !dependents.empty()) {
    return support::DependencyViolation("apps depending on " + app_name +
                                        " must be uninstalled first: " + dependents);
  }

  // Write-ahead: half-removed before any uninstall message leaves.
  WriteStatus(*vehicle, *installed, Want::kDeinstall, DbState::kHalfRemoved);
  installed->state = InstallState::kUninstalling;
  for (InstalledApp::PluginRecord& plugin : installed->plugins) {
    plugin.acked = false;
    plugin.ack_ok = false;
    pirte::PirteMessage message;
    message.type = pirte::MessageType::kUninstall;
    message.plugin_name = plugin.plugin;
    message.target_ecu = plugin.ecu_id;
    DACM_RETURN_IF_ERROR(PushToVehicle(shard, vin, message));
  }
  ++shard.stats.uninstalls;
  return support::OkStatus();
}

support::Status TrustedServer::Restore(UserId user, const std::string& vin,
                                       std::uint32_t ecu_id) {
  std::shared_lock lock(catalog_mutex_);
  Shard& shard = ShardFor(vin);
  auto vehicle_it = shard.vehicles.find(vin);
  if (vehicle_it == shard.vehicles.end()) return support::NotFound("VIN: " + vin);
  Vehicle* vehicle = &vehicle_it->second;
  DACM_RETURN_IF_ERROR(CheckOwnership(user, *vehicle));
  // "The server filters out previously installed plug-ins in the replaced
  // ECU ... Next, the usual installation steps are followed."  The recorded
  // packages are re-pushed verbatim, so the restored ECU gets the same
  // unique ids and contexts it had before.
  bool any = false;
  for (InstalledApp& installed : vehicle->installed) {
    const bool touches =
        std::any_of(installed.plugins.begin(), installed.plugins.end(),
                    [&](const InstalledApp::PluginRecord& plugin) {
                      return plugin.ecu_id == ecu_id;
                    });
    if (!touches) continue;
    any = true;
    // A recovered row has no recorded packages; rebuild from the catalog
    // before re-pushing (same ids when the bitmap is unchanged).
    if (std::any_of(installed.plugins.begin(), installed.plugins.end(),
                    [](const InstalledApp::PluginRecord& plugin) {
                      return plugin.package_bytes.empty();
                    })) {
      DACM_RETURN_IF_ERROR(MaterializeRowPackages(*vehicle, installed));
      installed.push_bytes = {};
    }
    // Write-ahead: the row drops back to in-flight before the re-push.
    WriteStatus(*vehicle, installed, Want::kInstall, DbState::kHalfInstalled);
    installed.state = InstallState::kPending;
    for (InstalledApp::PluginRecord& plugin : installed.plugins) {
      if (plugin.ecu_id != ecu_id) continue;
      plugin.acked = false;
      plugin.ack_ok = false;
      pirte::PirteMessage message;
      message.type = pirte::MessageType::kInstallPackage;
      message.plugin_name = plugin.plugin;
      message.target_ecu = plugin.ecu_id;
      message.payload = plugin.package_bytes;
      DACM_RETURN_IF_ERROR(PushToVehicle(shard, vin, message));
    }
  }
  if (!any) {
    return support::NotFound("no installed plug-ins on ECU " + std::to_string(ecu_id));
  }
  ++shard.stats.restores;
  return support::OkStatus();
}

// --- queries ---------------------------------------------------------------------------

support::Result<InstallState> TrustedServer::AppState(const std::string& vin,
                                                      const std::string& app_name) const {
  const Shard& shard = ShardFor(vin);
  auto it = shard.vehicles.find(vin);
  if (it == shard.vehicles.end()) return support::NotFound("VIN: " + vin);
  const InstalledApp* installed = it->second.FindInstalled(app_name);
  if (installed == nullptr) return support::NotFound("app not installed: " + app_name);
  return installed->state;
}

std::vector<std::string> TrustedServer::InstalledApps(const std::string& vin) const {
  std::vector<std::string> names;
  const Shard& shard = ShardFor(vin);
  auto it = shard.vehicles.find(vin);
  if (it == shard.vehicles.end()) return names;
  for (const InstalledApp& installed : it->second.installed) {
    names.push_back(installed.app_name);
  }
  return names;
}

const Vehicle* TrustedServer::FindVehicle(const std::string& vin) const {
  const Shard& shard = ShardFor(vin);
  auto it = shard.vehicles.find(vin);
  return it == shard.vehicles.end() ? nullptr : &it->second;
}

bool TrustedServer::VehicleOnline(const std::string& vin) const {
  const Shard& shard = ShardFor(vin);
  auto it = shard.connections.find(vin);
  if (it == shard.connections.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [](const auto& peer) { return peer->connected(); });
}

bool TrustedServer::HasApp(const std::string& app_name) const {
  std::shared_lock lock(catalog_mutex_);
  return apps_.contains(app_name);
}

ServerStats TrustedServer::stats() const {
  ServerStats total;
  for (const Shard& shard : shards_) {
    total.packages_pushed += shard.stats.packages_pushed;
    total.acks_received += shard.stats.acks_received;
    total.nacks_received += shard.stats.nacks_received;
    total.deploys_ok += shard.stats.deploys_ok;
    total.deploys_rejected += shard.stats.deploys_rejected;
    total.uninstalls += shard.stats.uninstalls;
    total.restores += shard.stats.restores;
    total.repushes += shard.stats.repushes;
    total.rollback_pushes += shard.stats.rollback_pushes;
    total.connections_reaped += shard.stats.connections_reaped;
  }
  total.connections_reaped += pending_reaped_;
  return total;
}

// --- internals ---------------------------------------------------------------------------

support::Status TrustedServer::CheckOwnership(UserId user, const Vehicle& vehicle) const {
  if (user.value() >= users_.size()) return support::NotFound("unknown user");
  if (vehicle.owner != user) {
    return support::PermissionDenied("vehicle " + vehicle.vin +
                                     " is not bound to this user");
  }
  return support::OkStatus();
}

support::Result<const VehicleModelConf*> TrustedServer::ModelConf(
    const std::string& model) const {
  auto it = models_.find(model);
  if (it == models_.end()) return support::NotFound("vehicle model: " + model);
  return &it->second;
}

std::string TrustedServer::DependentsOf(const Vehicle& vehicle,
                                        const std::string& app_name) const {
  std::string dependents;
  for (const InstalledApp& other : vehicle.installed) {
    if (other.app_name == app_name) continue;
    auto app_it = apps_.find(other.app_name);
    if (app_it == apps_.end()) continue;
    const auto& deps = app_it->second.depends_on;
    if (std::find(deps.begin(), deps.end(), app_name) != deps.end()) {
      if (!dependents.empty()) dependents += ", ";
      dependents += other.app_name;
    }
  }
  return dependents;
}

void TrustedServer::WriteStatus(const Vehicle& vehicle, const InstalledApp& row,
                                Want want, DbState state) {
  if (status_db_ == nullptr) return;
  StatusParagraph paragraph;
  paragraph.vin = vehicle.vin;
  paragraph.app = row.app_name;
  paragraph.version = row.version;
  paragraph.want = want;
  paragraph.state = state;
  paragraph.plugins.reserve(row.plugins.size());
  for (const InstalledApp::PluginRecord& plugin : row.plugins) {
    StatusParagraph::PluginIds ids;
    ids.plugin = plugin.plugin;
    ids.ecu_id = plugin.ecu_id;
    ids.unique_ids.reserve(plugin.pic.entries.size());
    for (const pirte::PicEntry& entry : plugin.pic.entries) {
      ids.unique_ids.push_back(entry.unique_id);
    }
    paragraph.plugins.push_back(std::move(ids));
  }
  if (auto status = status_db_->Append(paragraph); !status.ok()) {
    // Durability degrades, availability does not: the in-memory
    // transition proceeds and the operator sees the warning.
    DACM_LOG_WARN("server") << "status DB append failed for " << vehicle.vin
                            << "/" << row.app_name << ": " << status.message();
  }
}

void TrustedServer::WriteStatusRemoved(const std::string& vin,
                                       const std::string& app_name,
                                       const std::string& version, Want want) {
  if (status_db_ == nullptr) return;
  StatusParagraph paragraph;
  paragraph.vin = vin;
  paragraph.app = app_name;
  paragraph.version = version;
  paragraph.want = want;
  paragraph.state = DbState::kNotInstalled;
  if (auto status = status_db_->Append(paragraph); !status.ok()) {
    DACM_LOG_WARN("server") << "status DB append failed for " << vin << "/"
                            << app_name << ": " << status.message();
  }
}

support::Status TrustedServer::RecoverInstallDb(
    std::span<const std::uint8_t> image) {
  std::unique_lock lock(catalog_mutex_);
  for (const Shard& shard : shards_) {
    for (const auto& [vin, vehicle] : shard.vehicles) {
      if (!vehicle.installed.empty()) {
        return support::FailedPrecondition(
            "recover requires empty install tables (vehicle " + vin +
            " already has rows)");
      }
    }
  }
  DACM_ASSIGN_OR_RETURN(std::vector<StatusParagraph> paragraphs,
                        StatusDb::Replay(image));
  for (StatusParagraph& paragraph : paragraphs) {
    Shard& shard = ShardFor(paragraph.vin);
    auto vehicle_it = shard.vehicles.find(paragraph.vin);
    if (vehicle_it == shard.vehicles.end()) {
      return support::NotFound("recovered paragraph names unbound VIN " +
                               paragraph.vin + " (re-bind the fleet first)");
    }
    Vehicle& vehicle = vehicle_it->second;

    // Map (want, state) back onto the in-memory row.  A half state means
    // the push may or may not have reached the vehicle — the row comes
    // back in-flight and the campaign's next wave re-pushes (the vehicle
    // side absorbs duplicates).
    InstallState state = InstallState::kPending;
    bool acked = false;
    bool ack_ok = false;
    switch (paragraph.state) {
      case DbState::kNotInstalled:
        continue;  // unreachable: Replay drops tombstoned pairs
      case DbState::kHalfInstalled:
        state = InstallState::kPending;
        break;
      case DbState::kInstalled:
        state = InstallState::kInstalled;
        acked = true;
        ack_ok = true;
        break;
      case DbState::kHalfRemoved:
        state = InstallState::kUninstalling;
        break;
      case DbState::kErrorState:
        if (paragraph.want == Want::kDeinstall) {
          // A nacked uninstall re-arms as installed (retried by the next
          // rollback wave), exactly like the live-server path.
          state = InstallState::kInstalled;
          acked = true;
          ack_ok = true;
        } else {
          state = InstallState::kFailed;
          acked = true;
          ack_ok = false;
        }
        break;
    }

    InstalledApp row;
    row.app_name = paragraph.app;
    row.version = paragraph.version;
    row.state = state;
    row.plugins.reserve(paragraph.plugins.size());
    for (StatusParagraph::PluginIds& ids : paragraph.plugins) {
      InstalledApp::PluginRecord plugin;
      plugin.plugin = std::move(ids.plugin);
      plugin.ecu_id = ids.ecu_id;
      plugin.acked = acked;
      plugin.ack_ok = ack_ok;
      // Package bytes are NOT persisted; only the id claims come back.
      // The first wave that needs the payload regenerates it from the
      // re-uploaded catalog (MaterializeRowPackages).
      plugin.pic.entries.reserve(ids.unique_ids.size());
      for (std::uint8_t id : ids.unique_ids) {
        pirte::PicEntry entry;
        entry.unique_id = id;
        plugin.pic.entries.push_back(entry);
        vehicle.port_ids[ids.ecu_id].insert(id);
      }
      row.plugins.push_back(std::move(plugin));
    }
    vehicle.installed.push_back(std::move(row));
  }
  return support::OkStatus();
}

void TrustedServer::ReleaseRowIds(Vehicle& vehicle, const InstalledApp& row) {
  for (const InstalledApp::PluginRecord& plugin : row.plugins) {
    auto it = vehicle.port_ids.find(plugin.ecu_id);
    if (it == vehicle.port_ids.end()) continue;
    for (const pirte::PicEntry& entry : plugin.pic.entries) {
      it->second.erase(entry.unique_id);
    }
  }
}

void TrustedServer::OnAccept(std::shared_ptr<sim::NetPeer> peer) {
  // Reap accepted-but-dead peers that never completed a Hello (a link
  // flap between Connect and the Hello send strands them here); pruning
  // on every accept bounds pending_ by the number of live handshakes.
  pending_reaped_ += std::erase_if(
      pending_,
      [](const std::shared_ptr<sim::NetPeer>& old) { return !old->connected(); });
  sim::NetPeer* raw = peer.get();
  peer->SetReceiveHandler([this, raw](const support::SharedBytes& data) {
    OnVehicleMessage(raw, data);
  });
  pending_.push_back(std::move(peer));
}

void TrustedServer::OnVehicleMessage(sim::NetPeer* peer,
                                     const support::SharedBytes& data) {
  // Zero-copy parse: the view aliases `data`, which outlives this handler.
  auto envelope = pirte::EnvelopeView::Parse(data);
  if (!envelope.ok()) {
    DACM_LOG_WARN("server") << "undecodable vehicle message";
    return;
  }

  if (envelope->kind == pirte::Envelope::Kind::kHello) {
    // Adopt the connection into the VIN's shard registry, reaping any
    // dead predecessors (ECMs redial on a periodic alarm, so long link
    // flaps would otherwise accumulate peers without bound).
    const std::string vin(envelope->vin);
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].get() != peer) continue;
      Shard& shard = ShardFor(vin);
      auto& peers = shard.connections[vin];
      shard.stats.connections_reaped += std::erase_if(
          peers, [this](const std::shared_ptr<sim::NetPeer>& old) {
            if (old->connected()) return false;
            peer_vins_.erase(old.get());
            return true;
          });
      peers.push_back(std::move(pending_[i]));
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
    peer_vins_[peer] = vin;
    DACM_LOG_INFO("server") << "vehicle online: " << vin;
    return;
  }

  std::string vin;
  if (!envelope->vin.empty()) {
    vin = std::string(envelope->vin);
  } else if (auto it = peer_vins_.find(peer); it != peer_vins_.end()) {
    vin = it->second;
  } else {
    return;  // never said Hello
  }

  // Acknowledgements are the server's highest-volume inbound traffic
  // (thousands per campaign).  The simulation thread only routes: it
  // peeks the message's leading type byte, resolves the owning shard and
  // vehicle, and stages the raw bytes; the full parse runs on the flush
  // worker (scheduled at this arrival timestamp), one worker per shard,
  // so a campaign's ack storm parallelizes instead of serializing here.
  const std::span<const std::uint8_t> blob = envelope->message;
  const bool ack_like =
      !blob.empty() &&
      (blob[0] == static_cast<std::uint8_t>(pirte::MessageType::kAck) ||
       blob[0] == static_cast<std::uint8_t>(pirte::MessageType::kAckBatch));
  if (!ack_like) {
    // Non-ack vehicle traffic is unexpected; parse only to tell malformed
    // (warn) from benign-but-ignored.
    if (!pirte::PirteMessageView::Parse(blob).ok()) {
      DACM_LOG_WARN("server") << "undecodable PirteMessage from " << vin;
    }
    return;
  }
  Shard& shard = ShardFor(vin);
  // Zero-copy staging: the delivered buffer stays alive by refcount.
  auto vehicle_it = shard.vehicles.find(vin);
  Vehicle* vehicle =
      vehicle_it == shard.vehicles.end() ? nullptr : &vehicle_it->second;
  shard.ack_inbox.push_back(
      StagedAck{next_ack_seq_++, std::move(vin), vehicle, data, blob});
  ScheduleAckFlush();
}

void TrustedServer::ScheduleAckFlush() {
  if (ack_flush_scheduled_) return;
  ack_flush_scheduled_ = true;
  // Fires after every delivery already queued for this timestamp, so one
  // event covers the whole burst; acks are applied at the sim time they
  // arrived, before any later-scheduled event (e.g. a campaign wave) can
  // observe the rows.
  network_.simulator().ScheduleAfter(
      0, [this, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) return;
        ack_flush_scheduled_ = false;
        FlushAckInboxes();
      });
}

void TrustedServer::FlushAckInboxes() {
  bool any = false;
  for (const Shard& shard : shards_) {
    if (!shard.ack_inbox.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return;

  const auto flush_start = std::chrono::steady_clock::now();
  pool_.ParallelFor(shards_.size(), [this](std::size_t index) {
    Shard& shard = shards_[index];
    for (const StagedAck& staged : shard.ack_inbox) {
      ApplyStagedAck(shard, staged);
    }
    shard.ack_inbox.clear();
  });
  flush_ns_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - flush_start)
          .count());

  // Emit the workers' deferred logs in arrival order: the observable log
  // stream (which the determinism tests record) is identical to what
  // inline application on the simulation thread would have produced.
  std::vector<DeferredLog> logs;
  for (Shard& shard : shards_) {
    logs.insert(logs.end(), std::make_move_iterator(shard.flush_logs.begin()),
                std::make_move_iterator(shard.flush_logs.end()));
    shard.flush_logs.clear();
  }
  if (logs.empty()) return;
  // stable: logs from one ack batch share a seq and must keep their order.
  std::stable_sort(logs.begin(), logs.end(),
                   [](const DeferredLog& a, const DeferredLog& b) {
                     return a.seq < b.seq;
                   });
  for (const DeferredLog& log : logs) {
    if (log.warn) {
      DACM_LOG_WARN("server") << log.text;
    } else {
      DACM_LOG_INFO("server") << log.text;
    }
  }
}

void TrustedServer::ApplyStagedAck(Shard& shard, const StagedAck& staged) {
  auto parsed = pirte::PirteMessageView::Parse(staged.message);
  if (!parsed.ok()) {
    // Routing only peeked the type byte; a truncated ack surfaces here,
    // deferred like every flush-phase log.
    if (support::Log::Enabled(support::LogLevel::kWarn)) {
      shard.flush_logs.push_back(DeferredLog{
          staged.seq, true, "undecodable PirteMessage from " + staged.vin});
    }
    return;
  }
  const pirte::PirteMessageView& message = *parsed;
  Vehicle* vehicle = staged.vehicle;
  if (message.type == pirte::MessageType::kAck) {
    ++shard.stats.acks_received;
    if (!message.ok) ++shard.stats.nacks_received;
    if (vehicle == nullptr) return;
    ApplyAck(shard, *vehicle, message.plugin_name, message.ok, message.detail,
             staged.seq);
  } else if (message.type == pirte::MessageType::kAckBatch) {
    if (vehicle == nullptr) return;
    if (!message.ok) {
      // Typed whole-batch rejection: the vehicle could not process the
      // campaign push at all; plugin_name carries the batch's app label.
      ++shard.stats.acks_received;
      ++shard.stats.nacks_received;
      ApplyBatchNack(shard, *vehicle, message.plugin_name, message.detail,
                     staged.seq);
      return;
    }
    auto status = pirte::ForEachAckInBatch(
        message.payload,
        [&](std::string_view plugin, bool ok, std::string_view detail) {
          ++shard.stats.acks_received;
          if (!ok) ++shard.stats.nacks_received;
          ApplyAck(shard, *vehicle, plugin, ok, detail, staged.seq);
        });
    if (!status.ok() && support::Log::Enabled(support::LogLevel::kWarn)) {
      shard.flush_logs.push_back(DeferredLog{
          staged.seq, true, "undecodable ack batch from " + staged.vin});
    }
  }
}

support::Status TrustedServer::PushToVehicle(Shard& shard, const std::string& vin,
                                             const pirte::PirteMessage& message) {
  return PushWireToVehicle(
      shard, vin, support::SharedBytes(pirte::SerializeEnveloped(vin, message)));
}

support::Status TrustedServer::PushWireToVehicle(Shard& shard,
                                                 const std::string& vin,
                                                 const support::SharedBytes& wire) {
  if (wire.empty()) {
    // Belt and braces: every caller regenerates a dropped envelope before
    // pushing; an empty wire reaching here is a server bug, not a
    // vehicle-side condition, and must not be confused with "offline".
    return support::Internal("refusing to push empty wire to " + vin);
  }
  auto it = shard.connections.find(vin);
  if (it != shard.connections.end()) {
    for (const std::shared_ptr<sim::NetPeer>& peer : it->second) {
      if (!peer->connected()) continue;
      DACM_RETURN_IF_ERROR(peer->Send(wire));
      ++shard.stats.packages_pushed;
      return support::OkStatus();
    }
  }
  return support::Unavailable("vehicle offline: " + vin);
}

void TrustedServer::ApplyBatchNack(Shard& shard, Vehicle& vehicle,
                                   std::string_view app_name,
                                   std::string_view detail, std::uint64_t seq) {
  // The vehicle rejected a whole batch.  Only reachable through a failed
  // kAckBatch, so an app and a plug-in sharing a name cannot collide.
  for (InstalledApp& installed : vehicle.installed) {
    if (installed.app_name != app_name) continue;
    if (installed.state == InstallState::kPending) {
      // Fail the pending row outright — otherwise it would wait forever
      // for per-plug-in acks that will never come, blocking retries.
      WriteStatus(vehicle, installed, Want::kInstall, DbState::kErrorState);
      installed.state = InstallState::kFailed;
      installed.push_bytes = {};
      for (InstalledApp::PluginRecord& plugin : installed.plugins) {
        if (plugin.acked) continue;
        plugin.acked = true;
        plugin.ack_ok = false;
        plugin.ack_detail = detail;
      }
      if (support::Log::Enabled(support::LogLevel::kWarn)) {
        shard.flush_logs.push_back(
            DeferredLog{seq, true,
                        "app " + installed.app_name + " batch-rejected on " +
                            vehicle.vin + ": " + std::string(detail)});
      }
      return;
    }
    if (installed.state == InstallState::kUninstalling) {
      // A rejected kUninstallBatch: re-arm the row so the rollback
      // campaign's next wave pushes it again.  (kDeinstall, kInstalled)
      // recovers back into an installed row the next wave retries.
      WriteStatus(vehicle, installed, Want::kDeinstall, DbState::kInstalled);
      installed.state = InstallState::kInstalled;
      if (support::Log::Enabled(support::LogLevel::kWarn)) {
        shard.flush_logs.push_back(
            DeferredLog{seq, true,
                        "uninstall batch of " + installed.app_name +
                            " rejected on " + vehicle.vin + ": " +
                            std::string(detail)});
      }
      return;
    }
  }
}

void TrustedServer::ApplyAck(Shard& shard, Vehicle& vehicle,
                             std::string_view plugin_name, bool ok,
                             std::string_view detail, std::uint64_t seq) {
  for (std::size_t i = 0; i < vehicle.installed.size(); ++i) {
    InstalledApp& installed = vehicle.installed[i];
    if (installed.state != InstallState::kPending &&
        installed.state != InstallState::kUninstalling) {
      continue;
    }
    for (InstalledApp::PluginRecord& plugin : installed.plugins) {
      if (plugin.plugin != plugin_name || plugin.acked) continue;
      plugin.acked = true;
      plugin.ack_ok = ok;
      plugin.ack_detail = detail;
      // Re-evaluate the row.
      if (installed.state == InstallState::kPending) {
        if (installed.AnyFailed()) {
          WriteStatus(vehicle, installed, Want::kInstall, DbState::kErrorState);
          installed.state = InstallState::kFailed;
          installed.push_bytes = {};  // no more retry re-pushes of this batch
        } else if (installed.AllAcked()) {
          WriteStatus(vehicle, installed, Want::kInstall, DbState::kInstalled);
          installed.state = InstallState::kInstalled;
          installed.push_bytes = {};  // converged; release the recorded batch
          if (support::Log::Enabled(support::LogLevel::kInfo)) {
            shard.flush_logs.push_back(
                DeferredLog{seq, false,
                            "app " + installed.app_name +
                                " fully acknowledged on " + vehicle.vin});
          }
        }
      } else if (installed.state == InstallState::kUninstalling &&
                 installed.AllAcked()) {
        if (installed.AnyFailed()) {
          // The vehicle refused (or could not confirm) the uninstall.
          // Re-arm the row instead of silently dropping server state the
          // vehicle may still hold — a rollback campaign's next wave
          // retries, and a retry loop that never succeeds surfaces as
          // kExhausted rather than a false convergence.
          WriteStatus(vehicle, installed, Want::kDeinstall, DbState::kInstalled);
          installed.state = InstallState::kInstalled;
          if (support::Log::Enabled(support::LogLevel::kWarn)) {
            shard.flush_logs.push_back(
                DeferredLog{seq, true,
                            "uninstall of " + installed.app_name + " nacked on " +
                                vehicle.vin + "; row re-armed"});
          }
        } else {
          // The freed unique ids return to the vehicle's bitmap; the
          // tombstone erases the pair from the status DB on replay.
          WriteStatusRemoved(vehicle.vin, installed.app_name, installed.version,
                             Want::kDeinstall);
          ReleaseRowIds(vehicle, installed);
          vehicle.installed.erase(vehicle.installed.begin() +
                                  static_cast<std::ptrdiff_t>(i));
        }
      }
      return;
    }
  }
}

}  // namespace dacm::server
