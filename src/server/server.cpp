#include "server/server.hpp"

#include <algorithm>

#include "pirte/package.hpp"
#include "support/log.hpp"
#include "support/string_util.hpp"

namespace dacm::server {

std::string_view InstallStateName(InstallState state) {
  switch (state) {
    case InstallState::kPending: return "pending";
    case InstallState::kInstalled: return "installed";
    case InstallState::kFailed: return "failed";
    case InstallState::kUninstalling: return "uninstalling";
  }
  return "?";
}

TrustedServer::TrustedServer(sim::Network& network, std::string address)
    : network_(network), address_(std::move(address)) {}

support::Status TrustedServer::Start() {
  if (started_) return support::FailedPrecondition("server already started");
  DACM_RETURN_IF_ERROR(network_.Listen(
      address_, [this](std::shared_ptr<sim::NetPeer> peer) { OnAccept(std::move(peer)); }));
  started_ = true;
  return support::OkStatus();
}

// --- user setup -------------------------------------------------------------------

support::Result<UserId> TrustedServer::CreateUser(const std::string& name) {
  for (const User& user : users_) {
    if (user.name == name) return support::AlreadyExists("user: " + name);
  }
  users_.push_back(User{name, {}});
  return UserId(static_cast<std::uint32_t>(users_.size() - 1));
}

support::Status TrustedServer::BindVehicle(UserId user, const std::string& vin,
                                           const std::string& model) {
  if (user.value() >= users_.size()) return support::NotFound("unknown user");
  if (vehicles_.contains(vin)) return support::AlreadyExists("VIN already bound: " + vin);
  DACM_RETURN_IF_ERROR(ModelConf(model).status());
  Vehicle vehicle;
  vehicle.vin = vin;
  vehicle.model = model;
  vehicle.owner = user;
  vehicles_.emplace(vin, std::move(vehicle));
  users_[user.value()].vins.push_back(vin);
  return support::OkStatus();
}

// --- uploads -----------------------------------------------------------------------

support::Status TrustedServer::UploadVehicleModel(VehicleModelConf conf) {
  if (conf.model.empty()) return support::InvalidArgument("model name empty");
  models_[conf.model] = std::move(conf);
  return support::OkStatus();
}

support::Status TrustedServer::UploadApp(App app) {
  if (app.name.empty()) return support::InvalidArgument("app name empty");
  if (app.plugins.empty()) return support::InvalidArgument("app has no plug-ins");
  auto it = apps_.find(app.name);
  if (it != apps_.end() &&
      support::CompareVersions(app.version, it->second.version) <= 0) {
    return support::AlreadyExists("app " + app.name + " v" + it->second.version +
                                  " already stored with same or newer version");
  }
  apps_[app.name] = std::move(app);
  return support::OkStatus();
}

// --- operations -----------------------------------------------------------------------

support::Status TrustedServer::Deploy(UserId user, const std::string& vin,
                                      const std::string& app_name) {
  DACM_ASSIGN_OR_RETURN(Vehicle * vehicle, VehicleByVin(vin));
  DACM_RETURN_IF_ERROR(CheckOwnership(user, *vehicle));
  auto app_it = apps_.find(app_name);
  if (app_it == apps_.end()) {
    ++stats_.deploys_rejected;
    return support::NotFound("app: " + app_name);
  }
  const App& app = app_it->second;
  if (vehicle->FindInstalled(app_name) != nullptr) {
    ++stats_.deploys_rejected;
    return support::AlreadyExists("app already installed: " + app_name);
  }

  // Compatibility: a SW conf for this vehicle model must exist...
  const SwConf* conf = app.ConfForModel(vehicle->model);
  if (conf == nullptr) {
    ++stats_.deploys_rejected;
    return support::Incompatible("no SW conf for vehicle model " + vehicle->model);
  }
  DACM_ASSIGN_OR_RETURN(const VehicleModelConf* model, ModelConf(vehicle->model));
  // ...the platform must be recent enough...
  if (!conf->min_platform.empty() &&
      support::CompareVersions(model->sw.platform_version, conf->min_platform) < 0) {
    ++stats_.deploys_rejected;
    return support::Incompatible("platform " + model->sw.platform_version +
                                 " older than required " + conf->min_platform);
  }
  // ...every required virtual port must be exposed...
  for (const std::string& required : conf->required_virtual_ports) {
    if (model->sw.FindByName(required) == nullptr) {
      ++stats_.deploys_rejected;
      return support::Incompatible("vehicle lacks required virtual port " + required);
    }
  }
  // ...placements must target plug-in-capable ECUs...
  for (const PlacementDecl& placement : conf->placements) {
    const EcuInfo* ecu = model->hw.FindEcu(placement.ecu_id);
    if (ecu == nullptr || !ecu->has_plugin_swc) {
      ++stats_.deploys_rejected;
      return support::Incompatible("ECU " + std::to_string(placement.ecu_id) +
                                   " cannot host plug-ins");
    }
  }
  // ...then dependencies: pre-requisite apps must be installed...
  for (const std::string& dependency : app.depends_on) {
    const InstalledApp* installed = vehicle->FindInstalled(dependency);
    if (installed == nullptr || installed->state != InstallState::kInstalled) {
      ++stats_.deploys_rejected;
      return support::DependencyViolation("requires app " + dependency +
                                          " to be installed first");
    }
  }
  // ...and no conflicts in either direction.
  for (const std::string& conflict : app.conflicts_with) {
    if (vehicle->FindInstalled(conflict) != nullptr) {
      ++stats_.deploys_rejected;
      return support::DependencyViolation("conflicts with installed app " + conflict);
    }
  }
  for (const InstalledApp& installed : vehicle->installed) {
    auto other = apps_.find(installed.app_name);
    if (other == apps_.end()) continue;
    const auto& conflicts = other->second.conflicts_with;
    if (std::find(conflicts.begin(), conflicts.end(), app_name) != conflicts.end()) {
      ++stats_.deploys_rejected;
      return support::DependencyViolation("installed app " + installed.app_name +
                                          " conflicts with " + app_name);
    }
  }

  // The Pusher needs a live connection; reject before any state changes so
  // a retry starts from a clean table.
  if (!VehicleOnline(vin)) {
    ++stats_.deploys_rejected;
    return support::Unavailable("vehicle offline: " + vin);
  }

  // Context generation.
  UsedIdMap used_ids = CollectUsedIds(*vehicle);
  DACM_ASSIGN_OR_RETURN(auto generated,
                        GeneratePackages(app, *conf, model->sw, used_ids));

  // Record + push.
  InstalledApp record;
  record.app_name = app.name;
  record.version = app.version;
  record.state = InstallState::kPending;
  for (GeneratedPackage& gp : generated) {
    InstalledApp::PluginRecord plugin;
    plugin.plugin = gp.plugin;
    plugin.ecu_id = gp.ecu_id;
    plugin.pic = gp.package.pic;
    plugin.package_bytes = gp.package.Serialize();
    record.plugins.push_back(std::move(plugin));
  }
  vehicle->installed.push_back(std::move(record));

  for (const InstalledApp::PluginRecord& plugin : vehicle->installed.back().plugins) {
    pirte::PirteMessage message;
    message.type = pirte::MessageType::kInstallPackage;
    message.plugin_name = plugin.plugin;
    message.target_ecu = plugin.ecu_id;
    message.payload = plugin.package_bytes;
    auto push = PushToVehicle(vin, message);
    if (!push.ok()) {
      // Roll back the uncommitted row: a failed deploy must leave no trace
      // (a stale row would block retries and leak unique ids).
      vehicle->installed.pop_back();
      ++stats_.deploys_rejected;
      return push;
    }
  }
  ++stats_.deploys_ok;
  DACM_LOG_INFO("server") << "deploy " << app_name << " -> " << vin << " ("
                          << vehicle->installed.back().plugins.size() << " plug-ins)";
  return support::OkStatus();
}

support::Status TrustedServer::UninstallApp(UserId user, const std::string& vin,
                                            const std::string& app_name) {
  DACM_ASSIGN_OR_RETURN(Vehicle * vehicle, VehicleByVin(vin));
  DACM_RETURN_IF_ERROR(CheckOwnership(user, *vehicle));
  InstalledApp* installed = vehicle->FindInstalled(app_name);
  if (installed == nullptr) return support::NotFound("app not installed: " + app_name);

  // "whether there are some other installed plug-ins that are dependent on
  // the plug-ins being uninstalled" — the user is notified, not cascaded.
  std::string dependents;
  for (const InstalledApp& other : vehicle->installed) {
    if (other.app_name == app_name) continue;
    auto app_it = apps_.find(other.app_name);
    if (app_it == apps_.end()) continue;
    const auto& deps = app_it->second.depends_on;
    if (std::find(deps.begin(), deps.end(), app_name) != deps.end()) {
      if (!dependents.empty()) dependents += ", ";
      dependents += other.app_name;
    }
  }
  if (!dependents.empty()) {
    return support::DependencyViolation("apps depending on " + app_name +
                                        " must be uninstalled first: " + dependents);
  }

  installed->state = InstallState::kUninstalling;
  for (InstalledApp::PluginRecord& plugin : installed->plugins) {
    plugin.acked = false;
    plugin.ack_ok = false;
    pirte::PirteMessage message;
    message.type = pirte::MessageType::kUninstall;
    message.plugin_name = plugin.plugin;
    message.target_ecu = plugin.ecu_id;
    DACM_RETURN_IF_ERROR(PushToVehicle(vin, message));
  }
  ++stats_.uninstalls;
  return support::OkStatus();
}

support::Status TrustedServer::Restore(UserId user, const std::string& vin,
                                       std::uint32_t ecu_id) {
  DACM_ASSIGN_OR_RETURN(Vehicle * vehicle, VehicleByVin(vin));
  DACM_RETURN_IF_ERROR(CheckOwnership(user, *vehicle));
  // "The server filters out previously installed plug-ins in the replaced
  // ECU ... Next, the usual installation steps are followed."  The recorded
  // packages are re-pushed verbatim, so the restored ECU gets the same
  // unique ids and contexts it had before.
  bool any = false;
  for (InstalledApp& installed : vehicle->installed) {
    for (InstalledApp::PluginRecord& plugin : installed.plugins) {
      if (plugin.ecu_id != ecu_id) continue;
      any = true;
      plugin.acked = false;
      plugin.ack_ok = false;
      installed.state = InstallState::kPending;
      pirte::PirteMessage message;
      message.type = pirte::MessageType::kInstallPackage;
      message.plugin_name = plugin.plugin;
      message.target_ecu = plugin.ecu_id;
      message.payload = plugin.package_bytes;
      DACM_RETURN_IF_ERROR(PushToVehicle(vin, message));
    }
  }
  if (!any) {
    return support::NotFound("no installed plug-ins on ECU " + std::to_string(ecu_id));
  }
  ++stats_.restores;
  return support::OkStatus();
}

// --- queries ---------------------------------------------------------------------------

support::Result<InstallState> TrustedServer::AppState(const std::string& vin,
                                                      const std::string& app_name) const {
  auto it = vehicles_.find(vin);
  if (it == vehicles_.end()) return support::NotFound("VIN: " + vin);
  const InstalledApp* installed = it->second.FindInstalled(app_name);
  if (installed == nullptr) return support::NotFound("app not installed: " + app_name);
  return installed->state;
}

std::vector<std::string> TrustedServer::InstalledApps(const std::string& vin) const {
  std::vector<std::string> names;
  auto it = vehicles_.find(vin);
  if (it == vehicles_.end()) return names;
  for (const InstalledApp& installed : it->second.installed) {
    names.push_back(installed.app_name);
  }
  return names;
}

const Vehicle* TrustedServer::FindVehicle(const std::string& vin) const {
  auto it = vehicles_.find(vin);
  return it == vehicles_.end() ? nullptr : &it->second;
}

bool TrustedServer::VehicleOnline(const std::string& vin) const {
  for (const Connection& connection : connections_) {
    if (connection.vin == vin && connection.peer->connected()) return true;
  }
  return false;
}

// --- internals ---------------------------------------------------------------------------

support::Status TrustedServer::CheckOwnership(UserId user, const Vehicle& vehicle) const {
  if (user.value() >= users_.size()) return support::NotFound("unknown user");
  if (vehicle.owner != user) {
    return support::PermissionDenied("vehicle " + vehicle.vin +
                                     " is not bound to this user");
  }
  return support::OkStatus();
}

support::Result<Vehicle*> TrustedServer::VehicleByVin(const std::string& vin) {
  auto it = vehicles_.find(vin);
  if (it == vehicles_.end()) return support::NotFound("VIN: " + vin);
  return &it->second;
}

support::Result<const VehicleModelConf*> TrustedServer::ModelConf(
    const std::string& model) const {
  auto it = models_.find(model);
  if (it == models_.end()) return support::NotFound("vehicle model: " + model);
  return &it->second;
}

void TrustedServer::OnAccept(std::shared_ptr<sim::NetPeer> peer) {
  sim::NetPeer* raw = peer.get();
  peer->SetReceiveHandler([this, raw](const support::Bytes& data) {
    OnVehicleMessage(raw, data);
  });
  connections_.push_back(Connection{std::move(peer), ""});
}

void TrustedServer::OnVehicleMessage(sim::NetPeer* peer, const support::Bytes& data) {
  // Zero-copy parse: the view aliases `data`, which outlives this handler.
  auto envelope = pirte::EnvelopeView::Parse(data);
  if (!envelope.ok()) {
    DACM_LOG_WARN("server") << "undecodable vehicle message";
    return;
  }
  Connection* connection = nullptr;
  for (Connection& c : connections_) {
    if (c.peer.get() == peer) {
      connection = &c;
      break;
    }
  }
  if (connection == nullptr) return;

  if (envelope->kind == pirte::Envelope::Kind::kHello) {
    connection->vin = std::string(envelope->vin);
    DACM_LOG_INFO("server") << "vehicle online: " << envelope->vin;
    return;
  }
  auto message = pirte::PirteMessage::Deserialize(envelope->message);
  if (!message.ok()) {
    DACM_LOG_WARN("server") << "undecodable PirteMessage from " << connection->vin;
    return;
  }
  if (message->type == pirte::MessageType::kAck) {
    if (envelope->vin.empty()) {
      HandleAck(connection->vin, *message);
    } else {
      HandleAck(std::string(envelope->vin), *message);
    }
  }
}

support::Status TrustedServer::PushToVehicle(const std::string& vin,
                                             const pirte::PirteMessage& message) {
  for (Connection& connection : connections_) {
    if (connection.vin != vin || !connection.peer->connected()) continue;
    pirte::Envelope envelope;
    envelope.kind = pirte::Envelope::Kind::kPirteMessage;
    envelope.vin = vin;
    envelope.message = message.Serialize();
    DACM_RETURN_IF_ERROR(connection.peer->Send(envelope.Serialize()));
    ++stats_.packages_pushed;
    return support::OkStatus();
  }
  return support::Unavailable("vehicle offline: " + vin);
}

void TrustedServer::HandleAck(const std::string& vin, const pirte::PirteMessage& ack) {
  ++stats_.acks_received;
  auto it = vehicles_.find(vin);
  if (it == vehicles_.end()) return;
  Vehicle& vehicle = it->second;
  for (std::size_t i = 0; i < vehicle.installed.size(); ++i) {
    InstalledApp& installed = vehicle.installed[i];
    if (installed.state != InstallState::kPending &&
        installed.state != InstallState::kUninstalling) {
      continue;
    }
    for (InstalledApp::PluginRecord& plugin : installed.plugins) {
      if (plugin.plugin != ack.plugin_name || plugin.acked) continue;
      plugin.acked = true;
      plugin.ack_ok = ack.ok;
      plugin.ack_detail = ack.detail;
      // Re-evaluate the row.
      if (installed.state == InstallState::kPending) {
        if (installed.AnyFailed()) {
          installed.state = InstallState::kFailed;
        } else if (installed.AllAcked()) {
          installed.state = InstallState::kInstalled;
          DACM_LOG_INFO("server") << "app " << installed.app_name
                                  << " fully acknowledged on " << vin;
        }
      } else if (installed.state == InstallState::kUninstalling &&
                 installed.AllAcked()) {
        vehicle.installed.erase(vehicle.installed.begin() +
                                static_cast<std::ptrdiff_t>(i));
      }
      return;
    }
  }
}

}  // namespace dacm::server
