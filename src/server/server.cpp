#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <tuple>

#include "pirte/package.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/sink.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace dacm::server {

namespace {

/// Registry references bound once (the lookup mutex is paid here only);
/// hot-path observations are relaxed atomics on these.
struct ServerMetrics {
  support::Counter& packages_pushed;
  support::Counter& acks_received;
  support::Counter& nacks_received;
  support::Counter& deploys_ok;
  support::Counter& deploys_rejected;
  support::Counter& uninstalls;
  support::Counter& restores;
  support::Counter& repushes;
  support::Counter& rollback_pushes;
  support::Counter& connections_reaped;
  support::Counter& status_write_retries;
  support::Counter& status_writes_lost;
  support::Counter& compactions;
  support::Gauge& durability_degraded;
  /// Sim-time push→converged-ack round trip per install row (µs).
  support::Histogram& deploy_roundtrip_us;
  /// Wall time of each parallel ack-inbox drain (ns) — real time, so
  /// histogram-only, never traced.
  support::Histogram& ack_flush_nanos;
  /// Encoded status-record sizes written ahead of row transitions.
  support::Histogram& wal_append_bytes;
  /// Worker-side wall time per vehicle in DeployCampaign (checks,
  /// context generation, package assembly, push staging).
  support::Histogram& deploy_push_nanos;

  static ServerMetrics& Get() {
    auto& registry = support::Metrics::Instance();
    static ServerMetrics metrics{
        registry.GetCounter("dacm_server_packages_pushed_total"),
        registry.GetCounter("dacm_server_acks_received_total"),
        registry.GetCounter("dacm_server_nacks_received_total"),
        registry.GetCounter("dacm_server_deploys_ok_total"),
        registry.GetCounter("dacm_server_deploys_rejected_total"),
        registry.GetCounter("dacm_server_uninstalls_total"),
        registry.GetCounter("dacm_server_restores_total"),
        registry.GetCounter("dacm_server_repushes_total"),
        registry.GetCounter("dacm_server_rollback_pushes_total"),
        registry.GetCounter("dacm_server_connections_reaped_total"),
        registry.GetCounter("dacm_server_status_write_retries_total"),
        registry.GetCounter("dacm_server_status_writes_lost_total"),
        registry.GetCounter("dacm_server_compactions_total"),
        registry.GetGauge("dacm_server_durability_degraded"),
        registry.GetHistogram("dacm_deploy_roundtrip_us"),
        registry.GetHistogram("dacm_ack_flush_nanos"),
        registry.GetHistogram("dacm_wal_append_bytes"),
        registry.GetHistogram("dacm_deploy_push_nanos"),
    };
    return metrics;
  }
};

/// FNV-1a; stable across platforms so shard placement (and with it the
/// deterministic drain order of a campaign) never depends on the standard
/// library's std::hash.
std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t hash = 1469598103934665603ull;
  for (char c : s) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Status-DB encoding of an in-memory InstallState (the paragraph written
/// when a push fails and the row snaps back to its previous state).
Want WantFor(InstallState state) {
  return state == InstallState::kUninstalling ? Want::kDeinstall : Want::kInstall;
}

DbState DbStateFor(InstallState state) {
  switch (state) {
    case InstallState::kPending: return DbState::kHalfInstalled;
    case InstallState::kInstalled: return DbState::kInstalled;
    case InstallState::kFailed: return DbState::kErrorState;
    case InstallState::kUninstalling: return DbState::kHalfRemoved;
  }
  return DbState::kErrorState;
}

constexpr std::uint32_t kNil = FleetStore::kNil;

/// All-acked mask for an n-plug-in row (UploadApp caps n at 64).
std::uint64_t FullMask(std::size_t n) {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

bool RowAllAcked(const FleetStore::InstallRow& row) {
  return row.acked == FullMask(row.manifest->plugins.size());
}

bool RowAnyFailed(const FleetStore::InstallRow& row) {
  return (row.acked & ~row.ack_ok) != 0;
}

/// Bounded status-log retry budget before the server declares durability
/// degraded.  Small and fixed: the sinks are local (file / memory), so a
/// failure that survives three immediate retries is not transient.
constexpr int kStatusRetryBudget = 3;

/// The status paragraph recording `row` at (want, state) — shared by the
/// live write-ahead path (WriteStatus) and checkpoint compaction, so a
/// compacted log replays exactly like the raw one.
StatusParagraph ParagraphFor(std::string_view vin,
                             const FleetStore::InstallRow& row, Want want,
                             DbState state) {
  const BatchManifest& manifest = *row.manifest;
  StatusParagraph paragraph;
  paragraph.vin = std::string(vin);
  paragraph.app = manifest.app_name;
  paragraph.version = manifest.version;
  paragraph.want = want;
  paragraph.state = state;
  paragraph.plugins.reserve(manifest.plugins.size());
  for (const BatchManifest::Plugin& plugin : manifest.plugins) {
    StatusParagraph::PluginIds ids;
    ids.plugin = plugin.name;
    ids.ecu_id = plugin.ecu_id;
    ids.unique_ids.reserve(plugin.pic.entries.size());
    for (const pirte::PicEntry& entry : plugin.pic.entries) {
      ids.unique_ids.push_back(entry.unique_id);
    }
    paragraph.plugins.push_back(std::move(ids));
  }
  return paragraph;
}

}  // namespace

std::string_view InstallStateName(InstallState state) {
  switch (state) {
    case InstallState::kPending: return "pending";
    case InstallState::kInstalled: return "installed";
    case InstallState::kFailed: return "failed";
    case InstallState::kUninstalling: return "uninstalling";
  }
  return "?";
}

TrustedServer::TrustedServer(sim::Network& network, std::string address,
                             ServerOptions options)
    : network_(network),
      address_(std::move(address)),
      options_(options),
      shards_(options.shard_count == 0 ? 1 : options.shard_count),
      // One worker per shard; the simulation thread only coordinates, so
      // every campaign send goes through the deterministic staged path.
      pool_(shards_.size() == 1 ? 0 : shards_.size()) {
  if (options_.status_sink != nullptr) {
    status_db_ = std::make_unique<StatusDb>(*options_.status_sink,
                                            options_.status_sync_every_n_frames);
  }
}

TrustedServer::~TrustedServer() {
  // Disarm first: scheduled callbacks holding the weak alive_ token
  // (accept handler, ack flush, in-flight SYNs) see it expired and go
  // inert instead of dereferencing a dead server.
  alive_.reset();
  if (started_) (void)network_.Unlisten(address_);
  // Drop receive handlers before closing: a delivery already scheduled
  // for a later timestamp null-checks the handler and is absorbed.
  for (Shard& shard : shards_) {
    shard.store.ForEachPeer([](const std::shared_ptr<sim::NetPeer>& peer) {
      peer->SetReceiveHandler(nullptr);
      peer->Close();
    });
  }
  for (const std::shared_ptr<sim::NetPeer>& peer : pending_) {
    peer->SetReceiveHandler(nullptr);
    peer->Close();
  }
  pending_.clear();
}

std::size_t TrustedServer::ShardIndex(std::string_view vin) const {
  return shards_.size() == 1 ? 0 : Fnv1a(vin) % shards_.size();
}

TrustedServer::Shard& TrustedServer::ShardFor(std::string_view vin) {
  return shards_[ShardIndex(vin)];
}

const TrustedServer::Shard& TrustedServer::ShardFor(std::string_view vin) const {
  return shards_[ShardIndex(vin)];
}

support::Status TrustedServer::Start() {
  if (started_) return support::FailedPrecondition("server already started");
  // The SYN event copies this handler, so it can fire after the listener
  // is gone (server killed with a connect in flight) — the alive token
  // turns that into a no-op.
  DACM_RETURN_IF_ERROR(network_.Listen(
      address_, [this, alive = std::weak_ptr<const bool>(alive_)](
                    std::shared_ptr<sim::NetPeer> peer) {
        if (alive.expired()) return;
        OnAccept(std::move(peer));
      }));
  started_ = true;
  return support::OkStatus();
}

// --- user setup -------------------------------------------------------------------

support::Result<UserId> TrustedServer::CreateUser(const std::string& name) {
  std::unique_lock lock(catalog_mutex_);
  for (const User& user : users_) {
    if (user.name == name) return support::AlreadyExists("user: " + name);
  }
  users_.push_back(User{name, {}});
  const auto id = static_cast<std::uint32_t>(users_.size() - 1);
  if (status_db_ != nullptr) (void)AppendDurable(EncodeCatalogUser(id, name));
  return UserId(id);
}

support::Status TrustedServer::BindVehicle(UserId user, const std::string& vin,
                                           const std::string& model) {
  std::unique_lock lock(catalog_mutex_);
  if (user.value() >= users_.size()) return support::NotFound("unknown user");
  Shard& shard = ShardFor(vin);
  const std::uint32_t existing = shard.store.Find(vin);
  if (existing != kNil && shard.store.bound(existing)) {
    return support::AlreadyExists("VIN already bound: " + vin);
  }
  auto model_it = model_ids_.find(model);
  if (model_it == model_ids_.end()) {
    return support::NotFound("vehicle model: " + model);
  }
  // The handle may already exist (the ECM's Hello can race the binding);
  // binding just fills the model/owner columns.
  shard.store.Bind(shard.store.Intern(vin), model_it->second, user);
  users_[user.value()].vins.push_back(vin);
  if (status_db_ != nullptr) {
    (void)AppendDurable(EncodeCatalogBinding(vin, model, user.value()));
  }
  return support::OkStatus();
}

// --- uploads -----------------------------------------------------------------------

support::Status TrustedServer::UploadVehicleModel(VehicleModelConf conf) {
  if (conf.model.empty()) return support::InvalidArgument("model name empty");
  std::unique_lock lock(catalog_mutex_);
  if (!model_ids_.contains(conf.model)) {
    model_ids_.emplace(conf.model,
                       static_cast<std::uint16_t>(model_names_.size()));
    model_names_.push_back(conf.model);
  }
  // Encode before the move below consumes the conf.
  support::Bytes record;
  if (status_db_ != nullptr) record = EncodeCatalogModel(conf);
  models_[conf.model] = std::move(conf);
  if (status_db_ != nullptr) (void)AppendDurable(record);
  return support::OkStatus();
}

support::Status TrustedServer::UploadApp(App app) {
  if (app.name.empty()) return support::InvalidArgument("app name empty");
  if (app.plugins.empty()) return support::InvalidArgument("app has no plug-ins");
  if (app.plugins.size() > 64) {
    return support::InvalidArgument("app " + app.name +
                                    " has more than 64 plug-ins");
  }
  std::unique_lock lock(catalog_mutex_);
  auto it = apps_.find(app.name);
  if (it != apps_.end() &&
      support::CompareVersions(app.version, it->second.version) <= 0) {
    return support::AlreadyExists("app " + app.name + " v" + it->second.version +
                                  " already stored with same or newer version");
  }
  // Encode before the move below consumes the app (binaries inline — an
  // incremental record must be self-contained; only the checkpoint image
  // dedupes them into a pool).
  support::Bytes record;
  if (status_db_ != nullptr) record = EncodeCatalogApp(app);
  apps_[app.name] = std::move(app);
  if (status_db_ != nullptr) (void)AppendDurable(record);
  return support::OkStatus();
}

// --- operations -----------------------------------------------------------------------

support::Status TrustedServer::DeployOnShard(Shard& shard, UserId user,
                                             const std::string& vin,
                                             const App& app, bool batched) {
  FleetStore& store = shard.store;
  const std::uint32_t vehicle = store.Find(vin);
  if (vehicle == kNil || !store.bound(vehicle)) {
    return support::NotFound("VIN: " + vin);
  }
  DACM_RETURN_IF_ERROR(CheckOwnership(user, store.owner(vehicle), vin));
  if (store.FindRow(vehicle, app.name) != kNil) {
    ++shard.stats.deploys_rejected;
    return support::AlreadyExists("app already installed: " + app.name);
  }

  const std::string& model_name = ModelName(store.model(vehicle));
  // Compatibility: a SW conf for this vehicle model must exist...
  const SwConf* conf = app.ConfForModel(model_name);
  if (conf == nullptr) {
    ++shard.stats.deploys_rejected;
    return support::Incompatible("no SW conf for vehicle model " + model_name);
  }
  DACM_ASSIGN_OR_RETURN(const VehicleModelConf* model, ModelConf(model_name));
  // ...the platform must be recent enough...
  if (!conf->min_platform.empty() &&
      support::CompareVersions(model->sw.platform_version, conf->min_platform) < 0) {
    ++shard.stats.deploys_rejected;
    return support::Incompatible("platform " + model->sw.platform_version +
                                 " older than required " + conf->min_platform);
  }
  // ...every required virtual port must be exposed...
  for (const std::string& required : conf->required_virtual_ports) {
    if (model->sw.FindByName(required) == nullptr) {
      ++shard.stats.deploys_rejected;
      return support::Incompatible("vehicle lacks required virtual port " + required);
    }
  }
  // ...placements must target plug-in-capable ECUs...
  for (const PlacementDecl& placement : conf->placements) {
    const EcuInfo* ecu = model->hw.FindEcu(placement.ecu_id);
    if (ecu == nullptr || !ecu->has_plugin_swc) {
      ++shard.stats.deploys_rejected;
      return support::Incompatible("ECU " + std::to_string(placement.ecu_id) +
                                   " cannot host plug-ins");
    }
  }
  // ...then dependencies: pre-requisite apps must be installed...
  for (const std::string& dependency : app.depends_on) {
    const std::uint32_t dep = store.FindRow(vehicle, dependency);
    if (dep == kNil || store.row(dep).state != InstallState::kInstalled) {
      ++shard.stats.deploys_rejected;
      return support::DependencyViolation("requires app " + dependency +
                                          " to be installed first");
    }
  }
  // ...and no conflicts in either direction.
  for (const std::string& conflict : app.conflicts_with) {
    if (store.FindRow(vehicle, conflict) != kNil) {
      ++shard.stats.deploys_rejected;
      return support::DependencyViolation("conflicts with installed app " + conflict);
    }
  }
  for (std::uint32_t r = store.row_head(vehicle); r != kNil;
       r = store.row(r).next) {
    const std::string& installed_name = store.row(r).manifest->app_name;
    auto other = apps_.find(installed_name);
    if (other == apps_.end()) continue;
    const auto& conflicts = other->second.conflicts_with;
    if (std::find(conflicts.begin(), conflicts.end(), app.name) != conflicts.end()) {
      ++shard.stats.deploys_rejected;
      return support::DependencyViolation("installed app " + installed_name +
                                          " conflicts with " + app.name);
    }
  }

  // The Pusher needs a live connection; reject before any state changes so
  // a retry starts from a clean table.
  if (!store.HasLiveConnection(vehicle)) {
    ++shard.stats.deploys_rejected;
    return support::Unavailable("vehicle offline: " + vin);
  }

  // Content-addressed batch acquisition: generation + serialization run
  // once per distinct (model, app, version, id-layout); every other
  // vehicle of the cohort reuses the cached manifest/payload by refcount.
  DACM_ASSIGN_OR_RETURN(
      CachedBatch batch,
      cache_.Acquire(model_name, app, *conf, model->sw,
                     store.DeriveUsedIds(vehicle)));

  // Record + push.
  const std::uint32_t r = store.AddRow(vehicle);
  FleetStore::InstallRow& row = store.row(r);
  row.state = InstallState::kPending;
  row.manifest = batch.manifest;
  row.payload = batch.payload;
  // Write-ahead: the half-installed paragraph hits the status DB before
  // the push leaves, so a crash between push and ack recovers into a
  // retriable kPending row instead of a silently lost deploy.
  WriteStatus(vin, row, Want::kInstall, DbState::kHalfInstalled);

  auto rollback = [&](const support::Status& error) {
    // Roll back the uncommitted row: a failed deploy must leave no trace
    // (a stale row would block retries and pin batch refcounts).  The
    // tombstone undoes the write-ahead paragraph above.
    WriteStatusRemoved(vin, app.name, app.version, Want::kInstall);
    store.RemoveRow(vehicle, r);
    ++shard.stats.deploys_rejected;
    return error;
  };

  if (batched) {
    // Campaign path: push the cached batch envelope — a refcount bump,
    // no per-vehicle serialization at all.
    auto push = PushWireToVehicle(shard, vehicle, vin,
                                  batch.payload->install_wire);
    if (!push.ok()) return rollback(push);
  } else {
    for (std::size_t i = 0; i < batch.manifest->plugins.size(); ++i) {
      const BatchManifest::Plugin& plugin = batch.manifest->plugins[i];
      pirte::PirteMessage message;
      message.type = pirte::MessageType::kInstallPackage;
      message.plugin_name = plugin.name;
      message.target_ecu = plugin.ecu_id;
      message.payload = batch.payload->packages[i];
      auto push = PushToVehicle(shard, vehicle, vin, message);
      if (!push.ok()) return rollback(push);
    }
  }
  // Sim time of the wire push: the convergence path turns this into the
  // push→ack round-trip histogram and trace span.  Safe off-thread: the
  // simulation clock is frozen while workers run (the sim thread is
  // blocked at the pool barrier).
  row.pushed_at = network_.simulator().Now();
  ++shard.stats.deploys_ok;
  DACM_LOG_INFO("server") << "deploy " << app.name << " -> " << vin << " ("
                          << batch.manifest->plugins.size() << " plug-ins"
                          << (batched ? ", batched)" : ")");
  return support::OkStatus();
}

support::Status TrustedServer::Deploy(UserId user, const std::string& vin,
                                      const std::string& app_name) {
  std::shared_lock lock(catalog_mutex_);
  Shard& shard = ShardFor(vin);
  auto app_it = apps_.find(app_name);
  if (app_it == apps_.end()) {
    // Match the historic accounting: an unknown app only counts as a
    // rejection when the vehicle at least exists.
    const std::uint32_t vehicle = shard.store.Find(vin);
    if (vehicle != kNil && shard.store.bound(vehicle)) {
      ++shard.stats.deploys_rejected;
    }
    return support::NotFound("app: " + app_name);
  }
  return DeployOnShard(shard, user, vin, app_it->second, /*batched=*/false);
}

support::Result<CampaignReport> TrustedServer::DeployCampaign(
    UserId user, const std::string& app_name, std::span<const std::string> vins) {
  std::shared_lock lock(catalog_mutex_);
  auto app_it = apps_.find(app_name);
  if (app_it == apps_.end()) return support::NotFound("app: " + app_name);
  const App& app = app_it->second;

  // Partition the fleet so every worker touches exactly one shard.
  std::vector<std::vector<const std::string*>> by_shard(shards_.size());
  for (const std::string& vin : vins) {
    by_shard[ShardIndex(vin)].push_back(&vin);
  }

  struct ShardOutcome {
    std::vector<std::pair<std::string, support::Status>> failures;
    std::vector<std::uint64_t> ns;
  };
  std::vector<ShardOutcome> outcomes(shards_.size());

  pool_.ParallelFor(shards_.size(), [&](std::size_t index) {
    Shard& shard = shards_[index];
    ShardOutcome& outcome = outcomes[index];
    outcome.ns.reserve(by_shard[index].size());
    for (const std::string* vin : by_shard[index]) {
      const auto start = std::chrono::steady_clock::now();
      auto status = DeployOnShard(shard, user, *vin, app, /*batched=*/true);
      outcome.ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
      if (!status.ok()) outcome.failures.emplace_back(*vin, std::move(status));
    }
  });

  CampaignReport report;
  report.per_vehicle_ns.reserve(vins.size());
  ServerMetrics& metrics = ServerMetrics::Get();
  for (ShardOutcome& outcome : outcomes) {
    report.rejected += outcome.failures.size();
    for (auto& failure : outcome.failures) {
      report.failures.push_back(std::move(failure));
    }
    for (std::uint64_t ns : outcome.ns) metrics.deploy_push_nanos.Observe(ns);
    report.per_vehicle_ns.insert(report.per_vehicle_ns.end(), outcome.ns.begin(),
                                 outcome.ns.end());
  }
  report.deployed = vins.size() - report.rejected;
  FoldStatsToMetrics();
  return report;
}

namespace {

WaveOutcome ClassifyPush(support::Status status) {
  if (status.ok()) return WaveOutcome{WaveOutcome::Action::kPushed, {}};
  const auto action = status.code() == support::ErrorCode::kUnavailable
                          ? WaveOutcome::Action::kOffline
                          : WaveOutcome::Action::kRejected;
  return WaveOutcome{action, std::move(status)};
}

}  // namespace

std::vector<WaveOutcome> TrustedServer::CampaignWavePush(
    UserId user, const std::string& app_name, CampaignKind kind,
    std::span<const std::string> vins) {
  std::vector<WaveOutcome> outcomes(vins.size());
  std::shared_lock lock(catalog_mutex_);
  const App* app = nullptr;
  if (kind == CampaignKind::kDeploy) {
    auto app_it = apps_.find(app_name);
    if (app_it == apps_.end()) {
      for (WaveOutcome& outcome : outcomes) {
        outcome = WaveOutcome{WaveOutcome::Action::kRejected,
                              support::NotFound("app: " + app_name)};
      }
      return outcomes;
    }
    app = &app_it->second;
  }

  // Same shard discipline as DeployCampaign: one worker per shard, each
  // writing disjoint outcome slots (indexed by fleet position, so the
  // result keeps the caller's order).
  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  for (std::size_t i = 0; i < vins.size(); ++i) {
    by_shard[ShardIndex(vins[i])].push_back(i);
  }
  pool_.ParallelFor(shards_.size(), [&](std::size_t index) {
    Shard& shard = shards_[index];
    for (std::size_t i : by_shard[index]) {
      outcomes[i] = WavePushOnShard(shard, user, vins[i], app_name, app, kind);
    }
  });
  return outcomes;
}

WaveOutcome TrustedServer::WavePushOnShard(Shard& shard, UserId user,
                                           const std::string& vin,
                                           const std::string& app_name,
                                           const App* app, CampaignKind kind) {
  FleetStore& store = shard.store;
  const std::uint32_t vehicle = store.Find(vin);
  if (vehicle == kNil || !store.bound(vehicle)) {
    return WaveOutcome{WaveOutcome::Action::kRejected,
                       support::NotFound("VIN: " + vin)};
  }
  if (auto owned = CheckOwnership(user, store.owner(vehicle), vin);
      !owned.ok()) {
    return WaveOutcome{WaveOutcome::Action::kRejected, std::move(owned)};
  }

  if (kind == CampaignKind::kRollback) {
    const std::uint32_t r = store.FindRow(vehicle, app_name);
    if (r == kNil) return WaveOutcome{WaveOutcome::Action::kAlreadyDone, {}};
    if (std::string dependents = DependentsOf(shard, vehicle, app_name);
        !dependents.empty()) {
      return WaveOutcome{
          WaveOutcome::Action::kRejected,
          support::DependencyViolation("apps depending on " + app_name +
                                       " must be uninstalled first: " +
                                       dependents)};
    }
    // One kUninstallBatch per vehicle — the kInstallBatch framing in
    // reverse, pre-built on the manifest so every wave (and every vehicle
    // of the cohort) pushes the same buffer by refcount.  Ack masks reset
    // so a repeated wave (lost acks) converges.
    FleetStore::InstallRow& row = store.row(r);
    const InstallState previous = row.state;
    row.acked = 0;
    row.ack_ok = 0;
    // Write-ahead: half-removed before the uninstall batch leaves.
    WriteStatus(vin, row, Want::kDeinstall, DbState::kHalfRemoved);
    row.state = InstallState::kUninstalling;
    auto push =
        PushWireToVehicle(shard, vehicle, vin, row.manifest->uninstall_wire);
    if (!push.ok()) {
      row.state = previous;
      // Undo the write-ahead: re-record the state the row snapped back to.
      WriteStatus(vin, row, WantFor(previous), DbStateFor(previous));
      return ClassifyPush(std::move(push));
    }
    row.pushed_at = network_.simulator().Now();
    ++shard.stats.rollback_pushes;
    return WaveOutcome{WaveOutcome::Action::kPushed, {}};
  }

  // Deploy wave.
  if (const std::uint32_t r = store.FindRow(vehicle, app_name); r != kNil) {
    FleetStore::InstallRow& row = store.row(r);
    switch (row.state) {
      case InstallState::kInstalled:
        return WaveOutcome{WaveOutcome::Action::kAlreadyDone, {}};
      case InstallState::kUninstalling:
        return WaveOutcome{
            WaveOutcome::Action::kRejected,
            support::FailedPrecondition("uninstall of " + app_name +
                                        " in progress on " + vin)};
      case InstallState::kPending:
        // Pushed in an earlier wave but the acks never came back (link
        // flap): re-push the recorded batch verbatim.
        return ClassifyPush(RepushInstallBatch(shard, vehicle, r));
      case InstallState::kFailed: {
        // A nacked row blocks redeployment; clear it and fall through to
        // a fresh deploy.
        WriteStatusRemoved(vin, row.manifest->app_name, row.manifest->version,
                           Want::kInstall);
        store.RemoveRow(vehicle, r);
        break;
      }
    }
  }
  return ClassifyPush(DeployOnShard(shard, user, vin, *app, /*batched=*/true));
}

support::Status TrustedServer::RepushInstallBatch(Shard& shard,
                                                  std::uint32_t vehicle,
                                                  std::uint32_t r) {
  // A recovered row carries no payload (RecoverInstallDb persists ids,
  // not package bytes), and a convergence race can leave a row whose
  // payload was already dropped.  Rematerialize from the catalog before
  // pushing — never push an empty wire.
  if (shard.store.row(r).payload == nullptr) {
    DACM_RETURN_IF_ERROR(MaterializeRowPackages(shard, vehicle, r));
  }
  FleetStore::InstallRow& row = shard.store.row(r);
  row.acked = 0;
  row.ack_ok = 0;
  DACM_RETURN_IF_ERROR(PushWireToVehicle(shard, vehicle,
                                         shard.store.VinOf(vehicle),
                                         row.payload->install_wire));
  row.pushed_at = network_.simulator().Now();
  ++shard.stats.repushes;
  return support::OkStatus();
}

support::Status TrustedServer::MaterializeRowPackages(Shard& shard,
                                                      std::uint32_t vehicle,
                                                      std::uint32_t r) {
  FleetStore::InstallRow& row = shard.store.row(r);
  const std::string& app_name = row.manifest->app_name;
  auto app_it = apps_.find(app_name);
  if (app_it == apps_.end()) {
    return support::NotFound("app " + app_name +
                             " not in catalog (re-upload before resuming)");
  }
  const App& app = app_it->second;
  const std::string& model_name = ModelName(shard.store.model(vehicle));
  const SwConf* conf = app.ConfForModel(model_name);
  if (conf == nullptr) {
    return support::Incompatible("no SW conf for vehicle model " + model_name);
  }
  DACM_ASSIGN_OR_RETURN(const VehicleModelConf* model, ModelConf(model_name));
  // The layout the cache generates against excludes this row's own claims
  // — with no other churn since the original deploy the lowest-free
  // allocator reproduces the exact ids the vehicle already holds.  On
  // failure the row (and the derived bitmap) is untouched.
  DACM_ASSIGN_OR_RETURN(
      CachedBatch batch,
      cache_.Acquire(model_name, app, *conf, model->sw,
                     shard.store.DeriveUsedIds(vehicle, r)));
  row.manifest = batch.manifest;
  row.payload = batch.payload;
  // Re-record the paragraph: the regenerated ids may differ from the
  // recorded ones if the layout shifted underneath (another app released
  // lower ids since the original deploy).
  WriteStatus(shard.store.VinOf(vehicle), row, WantFor(row.state),
              DbStateFor(row.state));
  return support::OkStatus();
}

support::Status TrustedServer::UninstallApp(UserId user, const std::string& vin,
                                            const std::string& app_name) {
  std::shared_lock lock(catalog_mutex_);
  Shard& shard = ShardFor(vin);
  FleetStore& store = shard.store;
  const std::uint32_t vehicle = store.Find(vin);
  if (vehicle == kNil || !store.bound(vehicle)) {
    return support::NotFound("VIN: " + vin);
  }
  DACM_RETURN_IF_ERROR(CheckOwnership(user, store.owner(vehicle), vin));
  const std::uint32_t r = store.FindRow(vehicle, app_name);
  if (r == kNil) return support::NotFound("app not installed: " + app_name);

  // "whether there are some other installed plug-ins that are dependent on
  // the plug-ins being uninstalled" — the user is notified, not cascaded.
  if (std::string dependents = DependentsOf(shard, vehicle, app_name);
      !dependents.empty()) {
    return support::DependencyViolation("apps depending on " + app_name +
                                        " must be uninstalled first: " + dependents);
  }

  FleetStore::InstallRow& row = store.row(r);
  // Write-ahead: half-removed before any uninstall message leaves.
  WriteStatus(vin, row, Want::kDeinstall, DbState::kHalfRemoved);
  row.state = InstallState::kUninstalling;
  for (std::size_t i = 0; i < row.manifest->plugins.size(); ++i) {
    const BatchManifest::Plugin& plugin = row.manifest->plugins[i];
    row.acked &= ~(std::uint64_t{1} << i);
    row.ack_ok &= ~(std::uint64_t{1} << i);
    pirte::PirteMessage message;
    message.type = pirte::MessageType::kUninstall;
    message.plugin_name = plugin.name;
    message.target_ecu = plugin.ecu_id;
    DACM_RETURN_IF_ERROR(PushToVehicle(shard, vehicle, vin, message));
  }
  ++shard.stats.uninstalls;
  return support::OkStatus();
}

support::Status TrustedServer::Restore(UserId user, const std::string& vin,
                                       std::uint32_t ecu_id) {
  std::shared_lock lock(catalog_mutex_);
  Shard& shard = ShardFor(vin);
  FleetStore& store = shard.store;
  const std::uint32_t vehicle = store.Find(vin);
  if (vehicle == kNil || !store.bound(vehicle)) {
    return support::NotFound("VIN: " + vin);
  }
  DACM_RETURN_IF_ERROR(CheckOwnership(user, store.owner(vehicle), vin));
  // "The server filters out previously installed plug-ins in the replaced
  // ECU ... Next, the usual installation steps are followed."  The recorded
  // packages are re-pushed verbatim, so the restored ECU gets the same
  // unique ids and contexts it had before.
  bool any = false;
  for (std::uint32_t r = store.row_head(vehicle); r != kNil;
       r = store.row(r).next) {
    {
      const FleetStore::InstallRow& row = store.row(r);
      const bool touches = std::any_of(
          row.manifest->plugins.begin(), row.manifest->plugins.end(),
          [&](const BatchManifest::Plugin& plugin) {
            return plugin.ecu_id == ecu_id;
          });
      if (!touches) continue;
    }
    any = true;
    // A recovered (or converged) row has no payload; rebuild from the
    // catalog before re-pushing (same ids when the layout is unchanged).
    if (store.row(r).payload == nullptr) {
      DACM_RETURN_IF_ERROR(MaterializeRowPackages(shard, vehicle, r));
    }
    FleetStore::InstallRow& row = store.row(r);
    // Write-ahead: the row drops back to in-flight before the re-push.
    WriteStatus(vin, row, Want::kInstall, DbState::kHalfInstalled);
    row.state = InstallState::kPending;
    for (std::size_t i = 0; i < row.manifest->plugins.size(); ++i) {
      const BatchManifest::Plugin& plugin = row.manifest->plugins[i];
      if (plugin.ecu_id != ecu_id) continue;
      row.acked &= ~(std::uint64_t{1} << i);
      row.ack_ok &= ~(std::uint64_t{1} << i);
      pirte::PirteMessage message;
      message.type = pirte::MessageType::kInstallPackage;
      message.plugin_name = plugin.name;
      message.target_ecu = plugin.ecu_id;
      message.payload = row.payload->packages[i];
      DACM_RETURN_IF_ERROR(PushToVehicle(shard, vehicle, vin, message));
    }
  }
  if (!any) {
    return support::NotFound("no installed plug-ins on ECU " + std::to_string(ecu_id));
  }
  ++shard.stats.restores;
  return support::OkStatus();
}

// --- queries ---------------------------------------------------------------------------

support::Result<InstallState> TrustedServer::AppState(const std::string& vin,
                                                      const std::string& app_name) const {
  const Shard& shard = ShardFor(vin);
  const std::uint32_t vehicle = shard.store.Find(vin);
  if (vehicle == kNil || !shard.store.bound(vehicle)) {
    return support::NotFound("VIN: " + vin);
  }
  const std::uint32_t r = shard.store.FindRow(vehicle, app_name);
  if (r == kNil) return support::NotFound("app not installed: " + app_name);
  return shard.store.row(r).state;
}

std::vector<std::string> TrustedServer::InstalledApps(const std::string& vin) const {
  std::vector<std::string> names;
  const Shard& shard = ShardFor(vin);
  const std::uint32_t vehicle = shard.store.Find(vin);
  if (vehicle == kNil || !shard.store.bound(vehicle)) return names;
  for (std::uint32_t r = shard.store.row_head(vehicle); r != kNil;
       r = shard.store.row(r).next) {
    names.push_back(shard.store.row(r).manifest->app_name);
  }
  return names;
}

std::shared_ptr<const Vehicle> TrustedServer::FindVehicle(
    const std::string& vin) const {
  const Shard& shard = ShardFor(vin);
  const FleetStore& store = shard.store;
  const std::uint32_t vehicle = store.Find(vin);
  if (vehicle == kNil || !store.bound(vehicle)) return nullptr;
  auto view = std::make_shared<Vehicle>();
  view->vin = vin;
  view->model = ModelName(store.model(vehicle));
  view->owner = store.owner(vehicle);
  for (std::uint32_t r = store.row_head(vehicle); r != kNil;
       r = store.row(r).next) {
    const FleetStore::InstallRow& row = store.row(r);
    const BatchManifest& manifest = *row.manifest;
    InstalledApp record;
    record.app_name = manifest.app_name;
    record.version = manifest.version;
    record.state = row.state;
    record.plugins.reserve(manifest.plugins.size());
    for (std::size_t i = 0; i < manifest.plugins.size(); ++i) {
      InstalledApp::PluginRecord plugin;
      plugin.plugin = manifest.plugins[i].name;
      plugin.ecu_id = manifest.plugins[i].ecu_id;
      plugin.pic = manifest.plugins[i].pic;
      if (row.payload != nullptr) {
        plugin.package_bytes = row.payload->packages[i];
      }
      plugin.acked = ((row.acked >> i) & 1) != 0;
      plugin.ack_ok = ((row.ack_ok >> i) & 1) != 0;
      record.plugins.push_back(std::move(plugin));
    }
    if (row.payload != nullptr) record.push_bytes = row.payload->install_wire;
    record.uninstall_bytes = manifest.uninstall_wire;
    view->installed.push_back(std::move(record));
  }
  view->port_ids = store.DeriveUsedIds(vehicle);
  return view;
}

bool TrustedServer::HasVehicle(const std::string& vin) const {
  const Shard& shard = ShardFor(vin);
  const std::uint32_t vehicle = shard.store.Find(vin);
  return vehicle != kNil && shard.store.bound(vehicle);
}

bool TrustedServer::VehicleOnline(const std::string& vin) const {
  const Shard& shard = ShardFor(vin);
  const std::uint32_t vehicle = shard.store.Find(vin);
  return vehicle != kNil && shard.store.HasLiveConnection(vehicle);
}

bool TrustedServer::HasApp(const std::string& app_name) const {
  std::shared_lock lock(catalog_mutex_);
  return apps_.contains(app_name);
}

ServerStats TrustedServer::stats() const {
  ServerStats total;
  for (const Shard& shard : shards_) {
    total.packages_pushed += shard.stats.packages_pushed;
    total.acks_received += shard.stats.acks_received;
    total.nacks_received += shard.stats.nacks_received;
    total.deploys_ok += shard.stats.deploys_ok;
    total.deploys_rejected += shard.stats.deploys_rejected;
    total.uninstalls += shard.stats.uninstalls;
    total.restores += shard.stats.restores;
    total.repushes += shard.stats.repushes;
    total.rollback_pushes += shard.stats.rollback_pushes;
    total.connections_reaped += shard.stats.connections_reaped;
  }
  total.connections_reaped += pending_reaped_;
  total.durability_degraded =
      durability_degraded_.load(std::memory_order_relaxed);
  total.status_write_retries =
      status_write_retries_.load(std::memory_order_relaxed);
  total.status_writes_lost = status_writes_lost_.load(std::memory_order_relaxed);
  total.compactions = compactions_;
  return total;
}

void TrustedServer::FoldStatsToMetrics() const {
  const ServerStats total = stats();
  ServerMetrics& metrics = ServerMetrics::Get();
  metrics.packages_pushed.Set(total.packages_pushed);
  metrics.acks_received.Set(total.acks_received);
  metrics.nacks_received.Set(total.nacks_received);
  metrics.deploys_ok.Set(total.deploys_ok);
  metrics.deploys_rejected.Set(total.deploys_rejected);
  metrics.uninstalls.Set(total.uninstalls);
  metrics.restores.Set(total.restores);
  metrics.repushes.Set(total.repushes);
  metrics.rollback_pushes.Set(total.rollback_pushes);
  metrics.connections_reaped.Set(total.connections_reaped);
  metrics.status_write_retries.Set(total.status_write_retries);
  metrics.status_writes_lost.Set(total.status_writes_lost);
  metrics.compactions.Set(total.compactions);
  metrics.durability_degraded.Set(total.durability_degraded ? 1 : 0);
}

// --- internals ---------------------------------------------------------------------------

support::Status TrustedServer::CheckOwnership(UserId user, UserId owner,
                                              std::string_view vin) const {
  if (user.value() >= users_.size()) return support::NotFound("unknown user");
  if (owner != user) {
    return support::PermissionDenied("vehicle " + std::string(vin) +
                                     " is not bound to this user");
  }
  return support::OkStatus();
}

support::Result<const VehicleModelConf*> TrustedServer::ModelConf(
    const std::string& model) const {
  auto it = models_.find(model);
  if (it == models_.end()) return support::NotFound("vehicle model: " + model);
  return &it->second;
}

std::string TrustedServer::DependentsOf(const Shard& shard,
                                        std::uint32_t vehicle,
                                        const std::string& app_name) const {
  std::string dependents;
  for (std::uint32_t r = shard.store.row_head(vehicle); r != kNil;
       r = shard.store.row(r).next) {
    const std::string& other = shard.store.row(r).manifest->app_name;
    if (other == app_name) continue;
    auto app_it = apps_.find(other);
    if (app_it == apps_.end()) continue;
    const auto& deps = app_it->second.depends_on;
    if (std::find(deps.begin(), deps.end(), app_name) != deps.end()) {
      if (!dependents.empty()) dependents += ", ";
      dependents += other;
    }
  }
  return dependents;
}

void TrustedServer::WriteStatus(std::string_view vin,
                                const FleetStore::InstallRow& row, Want want,
                                DbState state) {
  if (status_db_ == nullptr) return;
  const auto record =
      StatusDb::EncodeParagraph(ParagraphFor(vin, row, want, state));
  (void)AppendDurable(record);
  // Lane = the VIN's shard: status writes for a VIN always run on the
  // worker owning that shard (or on the sim thread while no fan-out is
  // active), so the single-writer-per-lane rule holds.
  support::Tracer::Instance().Instant(
      static_cast<std::uint32_t>(ShardIndex(vin)) + 1, "wal.append", "wal",
      network_.simulator().Now(),
      {"bytes", static_cast<std::uint64_t>(record.size())}, {}, {}, "vin",
      vin);
}

void TrustedServer::WriteStatusRemoved(std::string_view vin,
                                       const std::string& app_name,
                                       const std::string& version, Want want) {
  if (status_db_ == nullptr) return;
  StatusParagraph paragraph;
  paragraph.vin = std::string(vin);
  paragraph.app = app_name;
  paragraph.version = version;
  paragraph.want = want;
  paragraph.state = DbState::kNotInstalled;
  const auto record = StatusDb::EncodeParagraph(paragraph);
  (void)AppendDurable(record);
  support::Tracer::Instance().Instant(
      static_cast<std::uint32_t>(ShardIndex(vin)) + 1, "wal.append", "wal",
      network_.simulator().Now(),
      {"bytes", static_cast<std::uint64_t>(record.size())}, {}, {}, "vin",
      vin);
}

support::Status TrustedServer::AppendDurable(
    std::span<const std::uint8_t> payload) {
  if (status_db_ == nullptr) return support::OkStatus();
  ServerMetrics::Get().wal_append_bytes.Observe(payload.size());
  if (durability_degraded_.load(std::memory_order_relaxed)) {
    // Already degraded: one attempt, no retry storm on a dead sink.
    auto status = status_db_->AppendRaw(payload);
    if (!status.ok()) {
      status_writes_lost_.fetch_add(1, std::memory_order_relaxed);
    }
    return status;
  }
  auto status = status_db_->AppendRaw(payload);
  for (int attempt = 0; !status.ok() && attempt < kStatusRetryBudget;
       ++attempt) {
    status_write_retries_.fetch_add(1, std::memory_order_relaxed);
    // Escalating-yield backoff: enough to let a contending writer or a
    // transient fs hiccup clear, without sleeping the sim thread.
    for (int i = 0; i <= attempt; ++i) std::this_thread::yield();
    status = status_db_->AppendRaw(payload);
  }
  if (!status.ok()) {
    status_writes_lost_.fetch_add(1, std::memory_order_relaxed);
    // Durability degrades, availability does not: the in-memory
    // transition proceeds; the flag is sticky and the operator sees one
    // warning at the transition (per-write noise would drown it).
    if (!durability_degraded_.exchange(true, std::memory_order_relaxed)) {
      DACM_LOG_WARN("server")
          << "durability degraded: status log write failed after "
          << kStatusRetryBudget << " retries: " << status.message();
    }
  }
  return status;
}

support::Status TrustedServer::RecoverInstallDb(
    std::span<const std::uint8_t> image) {
  std::unique_lock lock(catalog_mutex_);
  for (const Shard& shard : shards_) {
    for (std::uint32_t v = 0; v < shard.store.size(); ++v) {
      if (shard.store.bound(v) && shard.store.row_head(v) != kNil) {
        return support::FailedPrecondition(
            "recover requires empty install tables (vehicle " +
            std::string(shard.store.VinOf(v)) + " already has rows)");
      }
    }
  }
  const sim::SimTime replay_started_at = network_.simulator().Now();
  DACM_ASSIGN_OR_RETURN(StatusImage replayed, StatusDb::ReplayImage(image));
  if (!replayed.catalog.empty()) {
    DACM_RETURN_IF_ERROR(RestoreCatalogLocked(replayed.catalog));
  }
  std::uint64_t rows_created = 0;
  for (StatusParagraph& paragraph : replayed.paragraphs) {
    Shard& shard = ShardFor(paragraph.vin);
    const std::uint32_t vehicle = shard.store.Find(paragraph.vin);
    if (vehicle == kNil || !shard.store.bound(vehicle)) {
      return support::NotFound("recovered paragraph names unbound VIN " +
                               paragraph.vin + " (re-bind the fleet first)");
    }

    // Map (want, state) back onto the in-memory row.  A half state means
    // the push may or may not have reached the vehicle — the row comes
    // back in-flight and the campaign's next wave re-pushes (the vehicle
    // side absorbs duplicates).
    InstallState state = InstallState::kPending;
    bool acked = false;
    bool ack_ok = false;
    switch (paragraph.state) {
      case DbState::kNotInstalled:
        continue;  // unreachable: Replay drops tombstoned pairs
      case DbState::kHalfInstalled:
        state = InstallState::kPending;
        break;
      case DbState::kInstalled:
        state = InstallState::kInstalled;
        acked = true;
        ack_ok = true;
        break;
      case DbState::kHalfRemoved:
        state = InstallState::kUninstalling;
        break;
      case DbState::kErrorState:
        if (paragraph.want == Want::kDeinstall) {
          // A nacked uninstall re-arms as installed (retried by the next
          // rollback wave), exactly like the live-server path.
          state = InstallState::kInstalled;
          acked = true;
          ack_ok = true;
        } else {
          state = InstallState::kFailed;
          acked = true;
          ack_ok = false;
        }
        break;
    }

    // Rows come back with a one-off manifest carrying exactly what the
    // paragraph recorded: plug-in names, placements, unique-id claims.
    // Package bytes are NOT persisted; the first wave that needs the
    // payload regenerates it from the re-uploaded catalog
    // (MaterializeRowPackages).
    const std::uint32_t r = shard.store.AddRow(vehicle);
    FleetStore::InstallRow& row = shard.store.row(r);
    row.state = state;
    row.manifest = PackageCache::RecoveredManifest(
        paragraph.app, paragraph.version, paragraph.plugins);
    const std::uint64_t full = FullMask(paragraph.plugins.size());
    row.acked = acked ? full : 0;
    row.ack_ok = ack_ok ? full : 0;
    ++rows_created;
  }
  // Replay is instantaneous in sim time, so the span's duration is 0 —
  // what matters for trace diffing is its position and record counts.
  support::Tracer::Instance().Span(
      0, "recovery.replay", "server", replay_started_at,
      network_.simulator().Now() - replay_started_at,
      {"paragraphs", static_cast<std::uint64_t>(replayed.paragraphs.size())},
      {"rows", rows_created},
      {"catalog_bindings",
       static_cast<std::uint64_t>(replayed.catalog.bindings.size())});
  FoldStatsToMetrics();
  return support::OkStatus();
}

support::Status TrustedServer::RestoreCatalogLocked(const CatalogImage& image) {
  // Users: index == UserId, so the image's order is authoritative.  A
  // caller that already re-created users (the pre-checkpoint drill) must
  // have created them in the same order or the ids diverged for real.
  for (std::size_t i = 0; i < image.users.size(); ++i) {
    if (i < users_.size()) {
      if (users_[i].name != image.users[i].name) {
        return support::Corrupted(
            "recovered catalog user " + std::to_string(i) + " is '" +
            image.users[i].name + "' but the live catalog has '" +
            users_[i].name + "'");
      }
      continue;
    }
    users_.push_back(User{image.users[i].name, {}});
  }
  // Models in image (= pre-crash interner) order; live re-uploads win.
  for (const VehicleModelConf& conf : image.models) {
    if (!model_ids_.contains(conf.model)) {
      model_ids_.emplace(conf.model,
                         static_cast<std::uint16_t>(model_names_.size()));
      model_names_.push_back(conf.model);
    }
    models_.try_emplace(conf.model, conf);
  }
  for (const App& app : image.apps) {
    apps_.try_emplace(app.name, app);
  }
  // Bindings rebuild both the shard columns and the per-user VIN cache;
  // VINs the caller already re-bound are left as they are.
  for (const CatalogBinding& binding : image.bindings) {
    if (binding.owner >= users_.size()) {
      return support::Corrupted("recovered binding " + binding.vin +
                                " names unknown user " +
                                std::to_string(binding.owner));
    }
    auto model_it = model_ids_.find(binding.model);
    if (model_it == model_ids_.end()) {
      return support::Corrupted("recovered binding " + binding.vin +
                                " names unknown model " + binding.model);
    }
    Shard& shard = ShardFor(binding.vin);
    const std::uint32_t existing = shard.store.Find(binding.vin);
    if (existing != kNil && shard.store.bound(existing)) continue;
    shard.store.Bind(shard.store.Intern(binding.vin), model_it->second,
                     UserId(binding.owner));
    users_[binding.owner].vins.push_back(binding.vin);
  }
  return support::OkStatus();
}

support::Status TrustedServer::Compact() {
  if (status_db_ == nullptr) return support::OkStatus();
  support::CheckpointWriter checkpoint;
  {
    std::shared_lock lock(catalog_mutex_);
    CatalogImage image;
    image.users.reserve(users_.size());
    for (const User& user : users_) image.users.push_back(User{user.name, {}});
    // Models in interner order, so recovered model ids match pre-crash.
    image.models.reserve(model_names_.size());
    for (const std::string& name : model_names_) {
      auto it = models_.find(name);
      if (it != models_.end()) image.models.push_back(it->second);
    }
    // apps_ is an unordered_map: sort by name so the checkpoint bytes
    // (and with them the recovery fingerprint) are deterministic.
    std::vector<const App*> apps;
    apps.reserve(apps_.size());
    for (const auto& [name, app] : apps_) apps.push_back(&app);
    std::sort(apps.begin(), apps.end(),
              [](const App* a, const App* b) { return a->name < b->name; });
    image.apps.reserve(apps.size());
    for (const App* app : apps) image.apps.push_back(*app);
    for (const Shard& shard : shards_) {
      for (std::uint32_t v = 0; v < shard.store.size(); ++v) {
        if (!shard.store.bound(v)) continue;
        image.bindings.push_back(CatalogBinding{
            std::string(shard.store.VinOf(v)), ModelName(shard.store.model(v)),
            shard.store.owner(v).value()});
      }
    }
    DACM_RETURN_IF_ERROR(checkpoint.Append(EncodeCatalogImage(image)));
    // One paragraph per live install row — exactly what WriteStatus would
    // record for the row's current state, so replaying the checkpoint
    // reproduces this server.
    for (const Shard& shard : shards_) {
      for (std::uint32_t v = 0; v < shard.store.size(); ++v) {
        if (!shard.store.bound(v)) continue;
        for (std::uint32_t r = shard.store.row_head(v); r != kNil;
             r = shard.store.row(r).next) {
          const FleetStore::InstallRow& row = shard.store.row(r);
          DACM_RETURN_IF_ERROR(checkpoint.Append(
              StatusDb::EncodeParagraph(ParagraphFor(shard.store.VinOf(v), row,
                                                     WantFor(row.state),
                                                     DbStateFor(row.state)))));
        }
      }
    }
  }
  // Rotation failure leaves the raw log intact — durability is unchanged,
  // only the compaction deferred — so it does not degrade the server.
  DACM_RETURN_IF_ERROR(status_db_->Rotate(checkpoint.image()));
  ++compactions_;
  support::Tracer::Instance().Instant(
      0, "wal.rotate", "wal", network_.simulator().Now(),
      {"records", checkpoint.records()},
      {"bytes", checkpoint.image_bytes()});
  DACM_LOG_INFO("server") << "status log compacted: " << checkpoint.records()
                          << " records, " << checkpoint.image_bytes()
                          << " bytes";
  return support::OkStatus();
}

void TrustedServer::MaybeCompact() {
  if (status_db_ == nullptr || options_.compact_after_bytes == 0) return;
  if (status_db_->bytes_appended() < options_.compact_after_bytes) return;
  if (auto status = Compact(); !status.ok()) {
    DACM_LOG_WARN("server") << "status log compaction failed: "
                            << status.message();
  }
}

template <typename Sink>
void TrustedServer::FormatFleet(Sink& sink) const {
  // Sorted by VIN across shards, rows sorted by app within a vehicle:
  // the text must not depend on shard placement or on whether a row was
  // created live (deploy order) or by recovery (sorted replay order).
  std::vector<std::tuple<std::string_view, const Shard*, std::uint32_t>> order;
  for (const Shard& shard : shards_) {
    for (std::uint32_t v = 0; v < shard.store.size(); ++v) {
      if (shard.store.bound(v)) order.emplace_back(shard.store.VinOf(v), &shard, v);
    }
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return std::get<0>(a) < std::get<0>(b);
  });
  std::vector<const FleetStore::InstallRow*> rows;
  for (const auto& [vin, shard, v] : order) {
    sink.Append(vin);
    sink.Append(" model=");
    sink.Append(ModelName(shard->store.model(v)));
    sink.Append(" owner=");
    support::AppendNumber(sink, shard->store.owner(v).value());
    sink.Append("\n");
    rows.clear();
    for (std::uint32_t r = shard->store.row_head(v); r != kNil;
         r = shard->store.row(r).next) {
      rows.push_back(&shard->store.row(r));
    }
    std::sort(rows.begin(), rows.end(),
              [](const FleetStore::InstallRow* a,
                 const FleetStore::InstallRow* b) {
                return a->manifest->app_name < b->manifest->app_name;
              });
    for (const FleetStore::InstallRow* row : rows) {
      sink.Append("  ");
      sink.Append(row->manifest->app_name);
      sink.Append(" v");
      sink.Append(row->manifest->version);
      sink.Append(" state=");
      sink.Append(InstallStateName(row->state));
      sink.Append(" acked=");
      support::AppendNumber(sink, row->acked);
      sink.Append(" ack_ok=");
      support::AppendNumber(sink, row->ack_ok);
      sink.Append("\n");
    }
  }
}

std::string TrustedServer::DescribeFleet() const {
  support::StringSink sink;
  FormatFleet(sink);
  return std::move(sink.out);
}

std::uint64_t TrustedServer::FleetFingerprint() const {
  support::HashSink sink;
  FormatFleet(sink);
  return sink.hash;
}

void TrustedServer::OnAccept(std::shared_ptr<sim::NetPeer> peer) {
  // Reap accepted-but-dead peers that never completed a Hello (a link
  // flap between Connect and the Hello send strands them here); pruning
  // on every accept bounds pending_ by the number of live handshakes.
  pending_reaped_ += std::erase_if(
      pending_,
      [](const std::shared_ptr<sim::NetPeer>& old) { return !old->connected(); });
  sim::NetPeer* raw = peer.get();
  peer->SetReceiveHandler([this, raw](const support::SharedBytes& data) {
    OnVehicleMessage(raw, data);
  });
  pending_.push_back(std::move(peer));
}

void TrustedServer::OnVehicleMessage(sim::NetPeer* peer,
                                     const support::SharedBytes& data) {
  // Zero-copy parse: the view aliases `data`, which outlives this handler.
  auto envelope = pirte::EnvelopeView::Parse(data);
  if (!envelope.ok()) {
    DACM_LOG_WARN("server") << "undecodable vehicle message";
    return;
  }

  if (envelope->kind == pirte::Envelope::Kind::kHello) {
    // Adopt the connection into the VIN's shard registry, reaping any
    // dead predecessors (ECMs redial on a periodic alarm, so long link
    // flaps would otherwise accumulate peers without bound).
    const std::string vin(envelope->vin);
    const std::size_t shard_index = ShardIndex(vin);
    Shard& shard = shards_[shard_index];
    // Intern even before the binding exists: the handle anchors the
    // connection columns and the PeerRef reverse lookup.
    const std::uint32_t vehicle = shard.store.Intern(vin);
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].get() != peer) continue;
      shard.stats.connections_reaped += shard.store.ReapDeadPeers(
          vehicle, [this](const sim::NetPeer* old) { peer_vins_.erase(old); });
      shard.store.AddPeer(vehicle, std::move(pending_[i]));
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
    peer_vins_[peer] =
        PeerRef{static_cast<std::uint32_t>(shard_index), vehicle};
    DACM_LOG_INFO("server") << "vehicle online: " << vin;
    return;
  }

  std::string vin;
  std::size_t shard_index = 0;
  std::uint32_t vehicle = kNil;
  if (!envelope->vin.empty()) {
    vin = std::string(envelope->vin);
    shard_index = ShardIndex(vin);
    const std::uint32_t v = shards_[shard_index].store.Find(vin);
    // Helloed-but-unbound VINs have a handle but no vehicle (the historic
    // accounting counts their plain acks and drops their batches).
    if (v != kNil && shards_[shard_index].store.bound(v)) vehicle = v;
  } else if (auto it = peer_vins_.find(peer); it != peer_vins_.end()) {
    shard_index = it->second.shard;
    vin = std::string(shards_[shard_index].store.VinOf(it->second.vehicle));
    if (shards_[shard_index].store.bound(it->second.vehicle)) {
      vehicle = it->second.vehicle;
    }
  } else {
    return;  // never said Hello
  }

  // Acknowledgements are the server's highest-volume inbound traffic
  // (thousands per campaign).  The simulation thread only routes: it
  // peeks the message's leading type byte, resolves the owning shard and
  // vehicle handle, and stages the raw bytes; the full parse runs on the
  // flush worker (scheduled at this arrival timestamp), one worker per
  // shard, so a campaign's ack storm parallelizes instead of serializing
  // here.
  const std::span<const std::uint8_t> blob = envelope->message;
  const bool ack_like =
      !blob.empty() &&
      (blob[0] == static_cast<std::uint8_t>(pirte::MessageType::kAck) ||
       blob[0] == static_cast<std::uint8_t>(pirte::MessageType::kAckBatch));
  if (!ack_like) {
    // Non-ack vehicle traffic is unexpected; parse only to tell malformed
    // (warn) from benign-but-ignored.
    if (!pirte::PirteMessageView::Parse(blob).ok()) {
      DACM_LOG_WARN("server") << "undecodable PirteMessage from " << vin;
    }
    return;
  }
  Shard& shard = shards_[shard_index];
  // Zero-copy staging: the delivered buffer stays alive by refcount.
  shard.ack_inbox.push_back(
      StagedAck{next_ack_seq_++, std::move(vin), vehicle, data, blob});
  ScheduleAckFlush();
}

void TrustedServer::ScheduleAckFlush() {
  if (ack_flush_scheduled_) return;
  ack_flush_scheduled_ = true;
  // Fires after every delivery already queued for this timestamp, so one
  // event covers the whole burst; acks are applied at the sim time they
  // arrived, before any later-scheduled event (e.g. a campaign wave) can
  // observe the rows.
  network_.simulator().ScheduleAfter(
      0, [this, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) return;
        ack_flush_scheduled_ = false;
        FlushAckInboxes();
      });
}

void TrustedServer::FlushAckInboxes() {
  std::size_t staged_acks = 0;
  for (const Shard& shard : shards_) {
    staged_acks += shard.ack_inbox.size();
  }
  if (staged_acks == 0) return;

  const auto flush_start = std::chrono::steady_clock::now();
  pool_.ParallelFor(shards_.size(), [this](std::size_t index) {
    Shard& shard = shards_[index];
    for (const StagedAck& staged : shard.ack_inbox) {
      ApplyStagedAck(shard, staged);
    }
    shard.ack_inbox.clear();
  });
  const std::uint64_t flush_wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - flush_start)
          .count());
  flush_ns_ += flush_wall_ns;
  // Wall time is histogram-only; the trace event carries the (sim-time,
  // deterministic) barrier position and staged-ack count.
  ServerMetrics::Get().ack_flush_nanos.Observe(flush_wall_ns);
  support::Tracer::Instance().Instant(
      0, "ack.flush", "server", network_.simulator().Now(),
      {"acks", static_cast<std::uint64_t>(staged_acks)});
  // The barrier also publishes every shard's plain stats fields, making
  // this the natural fold point into the process metrics registry.
  FoldStatsToMetrics();

  // The checkpoint watermark is checked here — after the barrier, with
  // every worker done and the just-applied acks included — the one
  // recurring simulation-thread hook all campaign traffic funnels
  // through.
  MaybeCompact();

  // Emit the workers' deferred logs in arrival order: the observable log
  // stream (which the determinism tests record) is identical to what
  // inline application on the simulation thread would have produced.
  std::vector<DeferredLog> logs;
  for (Shard& shard : shards_) {
    logs.insert(logs.end(), std::make_move_iterator(shard.flush_logs.begin()),
                std::make_move_iterator(shard.flush_logs.end()));
    shard.flush_logs.clear();
  }
  if (logs.empty()) return;
  // stable: logs from one ack batch share a seq and must keep their order.
  std::stable_sort(logs.begin(), logs.end(),
                   [](const DeferredLog& a, const DeferredLog& b) {
                     return a.seq < b.seq;
                   });
  for (const DeferredLog& log : logs) {
    if (log.warn) {
      DACM_LOG_WARN("server") << log.text;
    } else {
      DACM_LOG_INFO("server") << log.text;
    }
  }
}

void TrustedServer::ApplyStagedAck(Shard& shard, const StagedAck& staged) {
  auto parsed = pirte::PirteMessageView::Parse(staged.message);
  if (!parsed.ok()) {
    // Routing only peeked the type byte; a truncated ack surfaces here,
    // deferred like every flush-phase log.
    if (support::Log::Enabled(support::LogLevel::kWarn)) {
      shard.flush_logs.push_back(DeferredLog{
          staged.seq, true, "undecodable PirteMessage from " + staged.vin});
    }
    return;
  }
  const pirte::PirteMessageView& message = *parsed;
  if (message.type == pirte::MessageType::kAck) {
    ++shard.stats.acks_received;
    if (!message.ok) ++shard.stats.nacks_received;
    if (staged.vehicle == kNil) return;
    ApplyAck(shard, staged.vehicle, message.plugin_name, message.ok,
             message.detail, staged.seq);
  } else if (message.type == pirte::MessageType::kAckBatch) {
    if (staged.vehicle == kNil) return;
    if (!message.ok) {
      // Typed whole-batch rejection: the vehicle could not process the
      // campaign push at all; plugin_name carries the batch's app label.
      ++shard.stats.acks_received;
      ++shard.stats.nacks_received;
      ApplyBatchNack(shard, staged.vehicle, message.plugin_name, message.detail,
                     staged.seq);
      return;
    }
    auto status = pirte::ForEachAckInBatch(
        message.payload,
        [&](std::string_view plugin, bool ok, std::string_view detail) {
          ++shard.stats.acks_received;
          if (!ok) ++shard.stats.nacks_received;
          ApplyAck(shard, staged.vehicle, plugin, ok, detail, staged.seq);
        });
    if (!status.ok() && support::Log::Enabled(support::LogLevel::kWarn)) {
      shard.flush_logs.push_back(DeferredLog{
          staged.seq, true, "undecodable ack batch from " + staged.vin});
    }
  }
}

support::Status TrustedServer::PushToVehicle(Shard& shard,
                                             std::uint32_t vehicle,
                                             const std::string& vin,
                                             const pirte::PirteMessage& message) {
  return PushWireToVehicle(
      shard, vehicle, vin,
      support::SharedBytes(pirte::SerializeEnveloped(vin, message)));
}

support::Status TrustedServer::PushWireToVehicle(Shard& shard,
                                                 std::uint32_t vehicle,
                                                 std::string_view vin,
                                                 const support::SharedBytes& wire) {
  if (wire.empty()) {
    // Belt and braces: every caller rematerializes a dropped payload
    // before pushing; an empty wire reaching here is a server bug, not a
    // vehicle-side condition, and must not be confused with "offline".
    return support::Internal("refusing to push empty wire to " +
                             std::string(vin));
  }
  if (sim::NetPeer* peer = shard.store.FirstConnectedPeer(vehicle);
      peer != nullptr) {
    DACM_RETURN_IF_ERROR(peer->Send(wire));
    ++shard.stats.packages_pushed;
    return support::OkStatus();
  }
  return support::Unavailable("vehicle offline: " + std::string(vin));
}

void TrustedServer::ApplyBatchNack(Shard& shard, std::uint32_t vehicle,
                                   std::string_view app_name,
                                   std::string_view detail, std::uint64_t seq) {
  // The vehicle rejected a whole batch.  Only reachable through a failed
  // kAckBatch, so an app and a plug-in sharing a name cannot collide.
  FleetStore& store = shard.store;
  for (std::uint32_t r = store.row_head(vehicle); r != kNil;
       r = store.row(r).next) {
    FleetStore::InstallRow& row = store.row(r);
    if (row.manifest->app_name != app_name) continue;
    if (row.state == InstallState::kPending) {
      // Fail the pending row outright — otherwise it would wait forever
      // for per-plug-in acks that will never come, blocking retries.
      WriteStatus(store.VinOf(vehicle), row, Want::kInstall,
                  DbState::kErrorState);
      row.state = InstallState::kFailed;
      row.payload = nullptr;
      // Unacked plug-ins are marked acked-but-failed (ack_ok bits for the
      // already-acked ones keep their value).
      row.acked = FullMask(row.manifest->plugins.size());
      if (support::Log::Enabled(support::LogLevel::kWarn)) {
        std::string text = "app " + row.manifest->app_name +
                           " batch-rejected on ";
        text += store.VinOf(vehicle);
        text += ": ";
        text += detail;
        shard.flush_logs.push_back(DeferredLog{seq, true, std::move(text)});
      }
      return;
    }
    if (row.state == InstallState::kUninstalling) {
      // A rejected kUninstallBatch: re-arm the row so the rollback
      // campaign's next wave pushes it again.  (kDeinstall, kInstalled)
      // recovers back into an installed row the next wave retries.
      WriteStatus(store.VinOf(vehicle), row, Want::kDeinstall,
                  DbState::kInstalled);
      row.state = InstallState::kInstalled;
      if (support::Log::Enabled(support::LogLevel::kWarn)) {
        std::string text = "uninstall batch of " + row.manifest->app_name +
                           " rejected on ";
        text += store.VinOf(vehicle);
        text += ": ";
        text += detail;
        shard.flush_logs.push_back(DeferredLog{seq, true, std::move(text)});
      }
      return;
    }
  }
}

void TrustedServer::ApplyAck(Shard& shard, std::uint32_t vehicle,
                             std::string_view plugin_name, bool ok,
                             std::string_view detail, std::uint64_t seq) {
  (void)detail;  // per-plug-in diagnostics surface via the deferred logs
  FleetStore& store = shard.store;
  for (std::uint32_t r = store.row_head(vehicle); r != kNil;
       r = store.row(r).next) {
    FleetStore::InstallRow& row = store.row(r);
    if (row.state != InstallState::kPending &&
        row.state != InstallState::kUninstalling) {
      continue;
    }
    const std::vector<BatchManifest::Plugin>& plugins = row.manifest->plugins;
    for (std::size_t i = 0; i < plugins.size(); ++i) {
      const std::uint64_t bit = std::uint64_t{1} << i;
      if (plugins[i].name != plugin_name || (row.acked & bit) != 0) continue;
      row.acked |= bit;
      if (ok) {
        row.ack_ok |= bit;
      } else {
        row.ack_ok &= ~bit;
      }
      // Re-evaluate the row.
      if (row.state == InstallState::kPending) {
        if (RowAnyFailed(row)) {
          WriteStatus(store.VinOf(vehicle), row, Want::kInstall,
                      DbState::kErrorState);
          row.state = InstallState::kFailed;
          row.payload = nullptr;  // no more retry re-pushes of this batch
        } else if (RowAllAcked(row)) {
          WriteStatus(store.VinOf(vehicle), row, Want::kInstall,
                      DbState::kInstalled);
          row.state = InstallState::kInstalled;
          // Converged: release the payload refcount.  When the cohort's
          // last pending row does this, the cache's weak reference
          // expires and the batch's package bytes are freed fleet-wide.
          row.payload = nullptr;
          // Push→ack round trip, both ends sim-time.  pushed_at == 0
          // means a recovered row acked without a live re-push; there is
          // no round trip to attribute.
          if (row.pushed_at != 0) {
            const sim::SimTime now = network_.simulator().Now();
            ServerMetrics::Get().deploy_roundtrip_us.Observe(now -
                                                             row.pushed_at);
            support::Tracer::Instance().Span(
                TraceLane(shard), "deploy.roundtrip", "server", row.pushed_at,
                now - row.pushed_at, {}, {}, {}, "vin", store.VinOf(vehicle));
          }
          if (support::Log::Enabled(support::LogLevel::kInfo)) {
            std::string text =
                "app " + row.manifest->app_name + " fully acknowledged on ";
            text += store.VinOf(vehicle);
            shard.flush_logs.push_back(DeferredLog{seq, false, std::move(text)});
          }
        }
      } else if (row.state == InstallState::kUninstalling && RowAllAcked(row)) {
        if (RowAnyFailed(row)) {
          // The vehicle refused (or could not confirm) the uninstall.
          // Re-arm the row instead of silently dropping server state the
          // vehicle may still hold — a rollback campaign's next wave
          // retries, and a retry loop that never succeeds surfaces as
          // kExhausted rather than a false convergence.
          WriteStatus(store.VinOf(vehicle), row, Want::kDeinstall,
                      DbState::kInstalled);
          row.state = InstallState::kInstalled;
          if (support::Log::Enabled(support::LogLevel::kWarn)) {
            std::string text =
                "uninstall of " + row.manifest->app_name + " nacked on ";
            text += store.VinOf(vehicle);
            text += "; row re-armed";
            shard.flush_logs.push_back(DeferredLog{seq, true, std::move(text)});
          }
        } else {
          // The freed unique ids disappear with the row (the bitmap is
          // derived); the tombstone erases the pair from the status DB
          // on replay.
          WriteStatusRemoved(store.VinOf(vehicle), row.manifest->app_name,
                             row.manifest->version, Want::kDeinstall);
          store.RemoveRow(vehicle, r);
        }
      }
      return;
    }
  }
}

}  // namespace dacm::server
