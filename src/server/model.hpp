// Trusted-server data model (paper Figure 2).
//
// User-side records: User, Vehicle, and the per-vehicle configuration
// (HW conf + SystemSW conf uploaded by the OEM per vehicle *model*, and
// the InstalledAPP table per vehicle *instance*).
//
// Developer-side records: APP (one or several plug-in binaries) with one
// or several SW confs describing, per vehicle model, how the plug-ins are
// distributed over the ECUs and how their ports connect.
//
// Note: this repo hosts exactly one plug-in SW-C per plug-in-capable ECU,
// so "SW-C-scope unique port ids" and "ECU-scope" coincide; ids are
// allocated per (vehicle, ECU).
#pragma once

#include <array>
#include <bit>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pirte/context.hpp"
#include "pirte/package.hpp"
#include "support/bytes.hpp"
#include "support/ids.hpp"
#include "support/shared_bytes.hpp"

namespace dacm::server {

struct UserTag {};
struct AppTag {};
using UserId = support::StrongId<UserTag>;
using AppId = support::StrongId<AppTag>;

/// Occupied unique port ids on one ECU: a 256-bit bitmap that hands out
/// the lowest free id in O(1).  Kept per vehicle (see Vehicle::port_ids)
/// and maintained incrementally across deploys/uninstalls — the free-list
/// that replaced the per-deploy rescan of the InstalledAPP table.
class PortIdSet {
 public:
  PortIdSet() = default;
  PortIdSet(std::initializer_list<std::uint8_t> ids) {
    for (std::uint8_t id : ids) insert(id);
  }

  bool contains(std::uint8_t id) const {
    return (words_[id >> 6] >> (id & 63)) & 1u;
  }
  void insert(std::uint8_t id) { words_[id >> 6] |= Bit(id); }
  void erase(std::uint8_t id) { words_[id >> 6] &= ~Bit(id); }
  std::size_t size() const {
    std::size_t count = 0;
    for (std::uint64_t word : words_) count += static_cast<std::size_t>(std::popcount(word));
    return count;
  }

  /// Raw 256-bit occupancy words, lowest ids in words()[0] bit 0.  The
  /// package cache canonicalizes a vehicle's used-id layout from these to
  /// key batch variants without walking individual ids.
  const std::array<std::uint64_t, 4>& words() const { return words_; }

  /// Claims and returns the lowest free id; nullopt once all 256 are taken.
  std::optional<std::uint8_t> AllocateLowest() {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] != ~std::uint64_t{0}) {
        const int bit = std::countr_one(words_[w]);
        words_[w] |= std::uint64_t{1} << bit;
        return static_cast<std::uint8_t>(w * 64 + static_cast<std::size_t>(bit));
      }
    }
    return std::nullopt;
  }

 private:
  static constexpr std::uint64_t Bit(std::uint8_t id) {
    return std::uint64_t{1} << (id & 63);
  }
  std::array<std::uint64_t, 4> words_{};
};

/// Occupied unique port ids, per ECU.
using UsedIdMap = std::unordered_map<std::uint32_t, PortIdSet>;

// --- OEM uploads (per vehicle model) -----------------------------------------

/// HW conf: hardware resources available to plug-ins.
struct EcuInfo {
  std::uint32_t ecu_id = 0;
  std::string name;           // e.g. "ECU1"
  bool has_plugin_swc = false;
  bool is_ecm = false;
  std::size_t max_plugins = 8;
  std::size_t max_binary_size = 64 * 1024;
};

struct HwConf {
  std::vector<EcuInfo> ecus;

  const EcuInfo* FindEcu(std::uint32_t ecu_id) const {
    for (const EcuInfo& ecu : ecus) {
      if (ecu.ecu_id == ecu_id) return &ecu;
    }
    return nullptr;
  }
};

enum class VirtualPortFlow : std::uint8_t {
  kPluginToSystem = 0,  // plug-ins write into it (e.g. WheelsReq)
  kSystemToPlugin = 1,  // plug-ins receive from it (e.g. SpeedProv)
  kBidirectional = 2,   // Type II channels
};

/// SystemSW conf: one exposed virtual port.
struct VirtualPortDesc {
  std::uint8_t id = 0;       // vehicle-scope V#
  std::string name;          // "WheelsReq"
  std::uint8_t kind = 3;     // 2 = Type II, 3 = Type III
  VirtualPortFlow flow = VirtualPortFlow::kPluginToSystem;
  std::uint32_t ecu_id = 0;  // ECU whose PIRTE owns this virtual port
  std::uint32_t peer_ecu = 0;  // Type II: the SW-C at the other end
};

struct SystemSwConf {
  std::string platform_version;  // comparable with CompareVersions
  std::vector<VirtualPortDesc> virtual_ports;

  const VirtualPortDesc* FindByName(const std::string& name) const {
    for (const VirtualPortDesc& vp : virtual_ports) {
      if (vp.name == name) return &vp;
    }
    return nullptr;
  }
};

/// A vehicle model's full configuration as uploaded by the OEM.
struct VehicleModelConf {
  std::string model;  // e.g. "rpi-testbed"
  HwConf hw;
  SystemSwConf sw;
};

// --- developer uploads ----------------------------------------------------------

struct PluginPortDecl {
  std::uint8_t local_index = 0;
  std::string name;
  pirte::PluginPortDirection direction = pirte::PluginPortDirection::kRequired;
};

/// One plug-in inside an APP.
struct PluginDecl {
  std::string name;  // unique within the app
  support::Bytes binary;
  std::vector<PluginPortDecl> ports;
};

/// How one plug-in port connects (SW conf material the server translates
/// into PLC/ECC entries).
struct ConnectionDecl {
  enum class Target : std::uint8_t {
    kNone = 0,          // PIRTE-direct ("P0-")
    kVirtualPort = 1,   // by virtual-port name
    kPeerPlugin = 2,    // another plug-in of the same app
    kExternalIn = 3,    // external world -> this port (via ECM)
    kExternalOut = 4,   // this port -> external world (via ECM)
  };

  std::string plugin;
  std::uint8_t local_port = 0;
  Target target = Target::kNone;
  std::string virtual_port_name;  // kVirtualPort
  std::string peer_plugin;        // kPeerPlugin
  std::uint8_t peer_port = 0;     // kPeerPlugin
  std::string endpoint;           // kExternal*
  std::string message_id;         // kExternal*
};

struct PlacementDecl {
  std::string plugin;
  std::uint32_t ecu_id = 0;
};

/// Per-vehicle-model deployment description of an APP.
struct SwConf {
  std::string vehicle_model;
  std::string min_platform;  // minimum SystemSW version
  std::vector<PlacementDecl> placements;
  std::vector<ConnectionDecl> connections;
  std::vector<std::string> required_virtual_ports;

  const PlacementDecl* PlacementOf(const std::string& plugin) const {
    for (const PlacementDecl& p : placements) {
      if (p.plugin == plugin) return &p;
    }
    return nullptr;
  }
};

struct App {
  std::string name;
  std::string version;
  std::string developer;
  std::vector<PluginDecl> plugins;
  std::vector<SwConf> confs;
  std::vector<std::string> depends_on;      // app names
  std::vector<std::string> conflicts_with;  // app names

  const SwConf* ConfForModel(const std::string& model) const {
    for (const SwConf& conf : confs) {
      if (conf.vehicle_model == model) return &conf;
    }
    return nullptr;
  }
  const PluginDecl* FindPlugin(const std::string& plugin) const {
    for (const PluginDecl& p : plugins) {
      if (p.name == plugin) return &p;
    }
    return nullptr;
  }
};

// --- per-vehicle records -----------------------------------------------------------

enum class InstallState : std::uint8_t {
  kPending,      // packages pushed, waiting for acks
  kInstalled,    // all plug-ins acked ok
  kFailed,       // at least one nack
  kUninstalling  // uninstall messages pushed, waiting for acks
};

std::string_view InstallStateName(InstallState state);

/// One row of the InstalledAPP table.
struct InstalledApp {
  std::string app_name;
  std::string version;
  InstallState state = InstallState::kPending;

  struct PluginRecord {
    std::string plugin;                  // plug-in name (ack key)
    std::uint32_t ecu_id = 0;            // placement
    pirte::PortInitContext pic;          // generated contexts (restore reuses them)
    support::Bytes package_bytes;        // full serialized InstallationPackage
    bool acked = false;
    bool ack_ok = false;
    std::string ack_detail;
  };
  std::vector<PluginRecord> plugins;

  /// The serialized kInstallBatch envelope recorded when the campaign
  /// batch was first pushed; retry waves re-push it verbatim (a refcount
  /// bump instead of reserializing ~50 KiB per vehicle).  Cleared once
  /// the row converges, so pending rows are the only ones paying memory.
  support::SharedBytes push_bytes;
  /// Same for the kUninstallBatch envelope, cached by the first rollback
  /// wave and reused by every repeated wave until the row resolves.
  support::SharedBytes uninstall_bytes;

  bool AllAcked() const {
    for (const PluginRecord& p : plugins) {
      if (!p.acked) return false;
    }
    return true;
  }
  bool AnyFailed() const {
    for (const PluginRecord& p : plugins) {
      if (p.acked && !p.ack_ok) return true;
    }
    return false;
  }
};

struct Vehicle {
  std::string vin;
  std::string model;
  UserId owner = UserId::Invalid();
  std::vector<InstalledApp> installed;
  /// Unique-id bitmap per ECU, kept in lockstep with `installed`: claimed
  /// by Deploy, released when a failed deploy rolls back or an uninstall
  /// fully acknowledges.
  UsedIdMap port_ids;

  InstalledApp* FindInstalled(const std::string& app_name) {
    for (InstalledApp& app : installed) {
      if (app.app_name == app_name) return &app;
    }
    return nullptr;
  }
  const InstalledApp* FindInstalled(const std::string& app_name) const {
    for (const InstalledApp& app : installed) {
      if (app.app_name == app_name) return &app;
    }
    return nullptr;
  }
};

struct User {
  std::string name;
  std::vector<std::string> vins;
};

}  // namespace dacm::server
