// Durable catalog records: users, vehicle models, apps and VIN bindings.
//
// PR 6 persisted the *install* state (status paragraphs) but left the
// catalog — who the users are, which models exist, which apps were
// uploaded, which VIN is bound to which model — as derived data the
// operator had to re-upload before recovery.  These records close that
// gap: every catalog mutation appends one incremental record to the
// status log (interleaved with paragraphs; the leading kind byte keeps
// the two streams apart), and compaction folds the whole catalog into a
// single kImage record at the front of the checkpoint, so a recovering
// server is fully serviceable from the log alone.
//
// Record payloads (each CRC-framed by the status log's RecordWriter;
// paragraphs lead with their version byte 1, catalog records with a
// CatalogRecordKind >= 2):
//
//   kUser    index name                      (incremental: CreateUser)
//   kModel   <model body>                    (incremental: UploadVehicleModel)
//   kApp     <app body, binaries inline>     (incremental: UploadApp)
//   kBinding vin model owner                 (incremental: BindVehicle)
//   kImage   <blob pool> <users> <models> <apps> <bindings>   (checkpoint)
//
// The kImage blob pool dedupes plug-in binaries by FNV-1a content hash —
// the same content-addressing the PackageCache keys batches by — so an
// app uploaded for N models (or N apps sharing a binary) stores each
// binary once per image instead of once per reference.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "server/model.hpp"
#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::server {

/// Leading payload byte of a catalog record.  Status paragraphs use 1
/// (their version byte); 0 is reserved so an empty payload never aliases.
enum class CatalogRecordKind : std::uint8_t {
  kUser = 2,
  kModel = 3,
  kApp = 4,
  kBinding = 5,
  kImage = 6,
};

/// One VIN -> (model, owner) binding.
struct CatalogBinding {
  std::string vin;
  std::string model;
  std::uint32_t owner = 0;
};

/// The folded catalog a replay produces: everything TrustedServer needs
/// to rebuild its user table, model map, app map and fleet bindings.
struct CatalogImage {
  /// Index == UserId.  `vins` is NOT serialized; RestoreCatalog rebuilds
  /// it from `bindings` (the bindings are the truth, the per-user list a
  /// cache).
  std::vector<User> users;
  /// Upload order (the server's interner order), so recovered model ids
  /// match the pre-crash interning.
  std::vector<VehicleModelConf> models;
  std::vector<App> apps;
  std::vector<CatalogBinding> bindings;

  bool empty() const {
    return users.empty() && models.empty() && apps.empty() && bindings.empty();
  }
};

/// True when `payload` is a catalog record (vs a status paragraph).
bool IsCatalogRecord(std::span<const std::uint8_t> payload);

// Incremental-record encoders, appended to the status log as the
// mutation commits.
support::Bytes EncodeCatalogUser(std::uint32_t index, const std::string& name);
support::Bytes EncodeCatalogModel(const VehicleModelConf& conf);
support::Bytes EncodeCatalogApp(const App& app);
support::Bytes EncodeCatalogBinding(const std::string& vin,
                                    const std::string& model,
                                    std::uint32_t owner);

/// Whole-catalog image record for the checkpoint, binaries deduped into
/// a content-hashed blob pool.
support::Bytes EncodeCatalogImage(const CatalogImage& image);

/// Folds one catalog record into `image`: incremental kinds upsert
/// (users by index, models/apps replace-by-name preserving first-seen
/// order, bindings upsert by VIN); kImage replaces the image wholesale —
/// records appended after a checkpoint land on top of its image.
support::Status ApplyCatalogRecord(std::span<const std::uint8_t> payload,
                                   CatalogImage& image);

}  // namespace dacm::server
