// Server-side context generation (paper §3.2.2).
//
// Given an APP's SW conf for a vehicle model, the vehicle's SystemSW conf,
// and the set of port unique-ids already occupied per ECU, generate the
// PIC / PLC / ECC for every plug-in and assemble the installation
// packages.  Pure functions — the ABL-2 benchmark calls them directly to
// measure the cost of keeping this intelligence on the server.
#pragma once

#include <vector>

#include "server/model.hpp"
#include "support/status.hpp"

namespace dacm::server {

// UsedIdMap (ECU -> PortIdSet bitmap) lives in server/model.hpp next to
// Vehicle::port_ids, the persistent per-vehicle instance of it.

/// One generated per-plug-in artifact.
struct GeneratedPackage {
  std::string plugin;
  std::uint32_t ecu_id = 0;
  pirte::InstallationPackage package;
};

/// Runs the full generation pipeline for (app, conf) on a vehicle with
/// `system_sw`; `used_ids` is updated with the newly assigned ids — on
/// failure every id claimed by the aborted run is released again, so a
/// persistent per-vehicle map stays consistent.  ECC entries are attached
/// to the package of the plug-in they describe; the ECM extracts them in
/// flight.
support::Result<std::vector<GeneratedPackage>> GeneratePackages(
    const App& app, const SwConf& conf, const SystemSwConf& system_sw,
    UsedIdMap& used_ids);

/// Rebuilds the occupied-id map from the InstalledAPP table.  The live
/// allocator is the incrementally maintained `Vehicle::port_ids`; this
/// reconstruction exists for tests and consistency checks against it —
/// the two must always agree.
UsedIdMap CollectUsedIds(const Vehicle& vehicle);

}  // namespace dacm::server
