// Server-side context generation (paper §3.2.2).
//
// Given an APP's SW conf for a vehicle model, the vehicle's SystemSW conf,
// and the set of port unique-ids already occupied per ECU, generate the
// PIC / PLC / ECC for every plug-in and assemble the installation
// packages.  Pure functions — the ABL-2 benchmark calls them directly to
// measure the cost of keeping this intelligence on the server.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "server/model.hpp"
#include "support/status.hpp"

namespace dacm::server {

/// Occupied unique port ids, per ECU (from the InstalledAPP table).
using UsedIdMap = std::unordered_map<std::uint32_t, std::unordered_set<std::uint8_t>>;

/// One generated per-plug-in artifact.
struct GeneratedPackage {
  std::string plugin;
  std::uint32_t ecu_id = 0;
  pirte::InstallationPackage package;
};

/// Runs the full generation pipeline for (app, conf) on a vehicle with
/// `system_sw`; `used_ids` is updated with the newly assigned ids.
/// `ecm_ecu` is where ECC entries are sent (they are attached to the
/// package of the plug-in they describe; the ECM extracts them in flight).
support::Result<std::vector<GeneratedPackage>> GeneratePackages(
    const App& app, const SwConf& conf, const SystemSwConf& system_sw,
    UsedIdMap& used_ids);

/// Collects the ids currently in use on `vehicle`, per ECU.
UsedIdMap CollectUsedIds(const Vehicle& vehicle);

}  // namespace dacm::server
