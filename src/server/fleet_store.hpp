// Packed per-shard fleet state (the celengine catalog idiom): one
// append-only VIN-interned table hands out dense u32 handles, and every
// per-vehicle attribute lives in a parallel column indexed by handle —
// no per-vehicle heap row, no per-vehicle map nodes.
//
// Columns (hot, touched by every campaign push/ack):
//   vins_      string_view into a chunked char arena (stable forever)
//   model_     u16 index into the server's model-name table (kUnbound
//              until BindVehicle)
//   owner_     owning user id
//   row_head_  head of the vehicle's intrusive install-row list
//   peer_      the primary (first adopted) connection, usually the only
//              one
//
// Install rows sit in one slab with an embedded free list; a row holds
// ack bitmasks plus two shared_ptrs into the content-addressed package
// cache (manifest pinned for the row's lifetime, payload only while the
// install is in flight).  Side tables hold only the cold minority:
// vehicles with more than one live connection.
//
// Occupied port ids are not stored at all — they are derived on demand
// from the rows' manifests, so deploy/uninstall/rollback never maintain
// a bitmap incrementally (and cannot leak one).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/model.hpp"
#include "server/package_cache.hpp"
#include "sim/network.hpp"

namespace dacm::server {

class FleetStore {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint16_t kUnbound = 0xffffu;

  /// One InstalledAPP-table row, ~64 bytes + two refcounts.  `acked` /
  /// `ack_ok` are per-plug-in bitmasks in manifest plug-in order (the
  /// server caps apps at 64 plug-ins so one word always suffices).
  struct InstallRow {
    std::uint32_t next = kNil;  // next row of the same vehicle / free list
    InstallState state = InstallState::kPending;
    std::uint64_t acked = 0;
    std::uint64_t ack_ok = 0;
    /// Sim time of the most recent wire push for this row (0 = never
    /// pushed).  Feeds the push→ack round-trip histogram and the
    /// per-vehicle deploy.roundtrip trace span on convergence.
    sim::SimTime pushed_at = 0;
    std::shared_ptr<const BatchManifest> manifest;
    std::shared_ptr<const BatchPayload> payload;
  };

  // --- VIN interning -------------------------------------------------------

  /// Handle for `vin`, or kNil if never seen on this shard.
  std::uint32_t Find(std::string_view vin) const;
  /// Handle for `vin`, interning it on first sight.
  std::uint32_t Intern(std::string_view vin);
  std::string_view VinOf(std::uint32_t v) const { return vins_[v]; }
  std::size_t size() const { return vins_.size(); }

  // --- binding columns -----------------------------------------------------

  /// A vehicle exists (for deploy/query purposes) once bound; a handle
  /// can predate its binding when the ECM's Hello races BindVehicle.
  bool bound(std::uint32_t v) const { return model_[v] != kUnbound; }
  void Bind(std::uint32_t v, std::uint16_t model, UserId owner) {
    model_[v] = model;
    owner_[v] = owner;
  }
  std::uint16_t model(std::uint32_t v) const { return model_[v]; }
  UserId owner(std::uint32_t v) const { return owner_[v]; }

  // --- install rows --------------------------------------------------------

  std::uint32_t row_head(std::uint32_t v) const { return row_head_[v]; }
  InstallRow& row(std::uint32_t r) { return rows_[r]; }
  const InstallRow& row(std::uint32_t r) const { return rows_[r]; }

  /// Appends a fresh row at the tail of `v`'s list (InstalledApps and
  /// status queries preserve install order) and returns its handle.
  std::uint32_t AddRow(std::uint32_t v);
  /// Unlinks `r` from `v`'s list, drops its cache references, and recycles
  /// the slot.
  void RemoveRow(std::uint32_t v, std::uint32_t r);
  /// Row of `v` whose manifest names `app_name`, or kNil.
  std::uint32_t FindRow(std::uint32_t v, std::string_view app_name) const;
  std::size_t live_rows() const { return live_rows_; }

  /// Occupied unique ids per ECU, derived from the rows' manifest PICs.
  /// `excluding_row` (if not kNil) is left out — the shape rematerialize
  /// needs when regenerating that row's own packages.
  UsedIdMap DeriveUsedIds(std::uint32_t v,
                          std::uint32_t excluding_row = kNil) const;

  // --- connections ---------------------------------------------------------

  /// Adopts a connection, after the caller reaped dead ones.  First live
  /// connection lands in the primary column; extras go to the side table.
  void AddPeer(std::uint32_t v, std::shared_ptr<sim::NetPeer> peer);

  /// Drops `v`'s dead connections (calling `on_reap(peer*)` for each, so
  /// the server can unregister them) and returns how many were dropped.
  template <typename Fn>
  std::size_t ReapDeadPeers(std::uint32_t v, Fn&& on_reap) {
    std::size_t reaped = 0;
    auto extra = extra_peers_.find(v);
    if (peer_[v] != nullptr && !peer_[v]->connected()) {
      on_reap(peer_[v].get());
      peer_[v] = nullptr;
      ++reaped;
    }
    if (extra != extra_peers_.end()) {
      auto& extras = extra->second;
      for (auto it = extras.begin(); it != extras.end();) {
        if ((*it)->connected()) {
          ++it;
          continue;
        }
        on_reap(it->get());
        it = extras.erase(it);
        ++reaped;
      }
      // Keep adoption order: the oldest surviving extra becomes primary.
      if (peer_[v] == nullptr && !extras.empty()) {
        peer_[v] = std::move(extras.front());
        extras.erase(extras.begin());
      }
      if (extras.empty()) extra_peers_.erase(extra);
    }
    return reaped;
  }

  /// First connection (in adoption order) that is still up, or nullptr.
  sim::NetPeer* FirstConnectedPeer(std::uint32_t v) const;
  bool HasLiveConnection(std::uint32_t v) const {
    return FirstConnectedPeer(v) != nullptr;
  }

  /// Every adopted connection of every vehicle (teardown path).
  template <typename Fn>
  void ForEachPeer(Fn&& fn) {
    for (auto& peer : peer_) {
      if (peer != nullptr) fn(peer);
    }
    for (auto& [v, extras] : extra_peers_) {
      for (auto& peer : extras) fn(peer);
    }
  }

 private:
  static constexpr std::size_t kArenaChunk = 64 * 1024;

  std::string_view Store(std::string_view vin);
  void Rehash(std::size_t slot_count);

  // VIN arena + open-addressed handle index (power-of-two, linear probe).
  std::vector<std::unique_ptr<char[]>> arena_;
  std::size_t arena_used_ = kArenaChunk;  // forces a first chunk
  std::vector<std::uint32_t> slots_;

  // Parallel columns, one entry per interned VIN.
  std::vector<std::string_view> vins_;
  std::vector<std::uint16_t> model_;
  std::vector<UserId> owner_;
  std::vector<std::uint32_t> row_head_;
  std::vector<std::shared_ptr<sim::NetPeer>> peer_;

  // Cold minority: vehicles holding more than one live connection.
  std::unordered_map<std::uint32_t, std::vector<std::shared_ptr<sim::NetPeer>>>
      extra_peers_;

  // Install-row slab with embedded free list.
  std::vector<InstallRow> rows_;
  std::uint32_t free_rows_ = kNil;
  std::size_t live_rows_ = 0;
};

}  // namespace dacm::server
