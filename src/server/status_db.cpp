#include "server/status_db.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "support/bytes.hpp"

namespace dacm::server {
namespace {

constexpr std::uint8_t kParagraphVersion = 1;

support::Result<StatusParagraph> DecodeParagraph(
    std::span<const std::uint8_t> payload) {
  support::ByteReader reader(payload);
  DACM_ASSIGN_OR_RETURN(const std::uint8_t version, reader.ReadU8());
  if (version != kParagraphVersion) {
    return support::Corrupted("unknown status paragraph version");
  }
  StatusParagraph paragraph;
  DACM_ASSIGN_OR_RETURN(paragraph.vin, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(paragraph.app, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(paragraph.version, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(const std::uint8_t want, reader.ReadU8());
  DACM_ASSIGN_OR_RETURN(const std::uint8_t state, reader.ReadU8());
  if (want > static_cast<std::uint8_t>(Want::kDeinstall) ||
      state > static_cast<std::uint8_t>(DbState::kErrorState)) {
    return support::Corrupted("status paragraph enum out of range");
  }
  paragraph.want = static_cast<Want>(want);
  paragraph.state = static_cast<DbState>(state);
  DACM_ASSIGN_OR_RETURN(const std::uint32_t plugin_count, reader.ReadVarU32());
  paragraph.plugins.reserve(plugin_count);
  for (std::uint32_t i = 0; i < plugin_count; ++i) {
    StatusParagraph::PluginIds ids;
    DACM_ASSIGN_OR_RETURN(ids.plugin, reader.ReadString());
    DACM_ASSIGN_OR_RETURN(ids.ecu_id, reader.ReadU32());
    DACM_ASSIGN_OR_RETURN(const std::uint32_t id_count, reader.ReadVarU32());
    ids.unique_ids.reserve(id_count);
    for (std::uint32_t j = 0; j < id_count; ++j) {
      DACM_ASSIGN_OR_RETURN(const std::uint8_t unique, reader.ReadU8());
      ids.unique_ids.push_back(unique);
    }
    paragraph.plugins.push_back(std::move(ids));
  }
  if (!reader.exhausted()) {
    return support::Corrupted("trailing bytes in status paragraph");
  }
  return paragraph;
}

}  // namespace

std::string_view WantName(Want want) {
  switch (want) {
    case Want::kInstall: return "install";
    case Want::kDeinstall: return "deinstall";
  }
  return "?";
}

std::string_view DbStateName(DbState state) {
  switch (state) {
    case DbState::kNotInstalled: return "not-installed";
    case DbState::kHalfInstalled: return "half-installed";
    case DbState::kInstalled: return "installed";
    case DbState::kHalfRemoved: return "half-removed";
    case DbState::kErrorState: return "error";
  }
  return "?";
}

support::Bytes StatusDb::EncodeParagraph(const StatusParagraph& paragraph) {
  support::ByteWriter writer;
  writer.WriteU8(kParagraphVersion);
  writer.WriteString(paragraph.vin);
  writer.WriteString(paragraph.app);
  writer.WriteString(paragraph.version);
  writer.WriteU8(static_cast<std::uint8_t>(paragraph.want));
  writer.WriteU8(static_cast<std::uint8_t>(paragraph.state));
  writer.WriteVarU32(static_cast<std::uint32_t>(paragraph.plugins.size()));
  for (const StatusParagraph::PluginIds& ids : paragraph.plugins) {
    writer.WriteString(ids.plugin);
    writer.WriteU32(ids.ecu_id);
    writer.WriteVarU32(static_cast<std::uint32_t>(ids.unique_ids.size()));
    for (const std::uint8_t unique : ids.unique_ids) writer.WriteU8(unique);
  }
  return writer.Take();
}

support::Status StatusDb::Append(const StatusParagraph& paragraph) {
  return writer_.Append(EncodeParagraph(paragraph));
}

support::Status StatusDb::AppendRaw(std::span<const std::uint8_t> payload) {
  return writer_.Append(payload);
}

support::Result<std::vector<StatusParagraph>> StatusDb::Replay(
    std::span<const std::uint8_t> data) {
  DACM_ASSIGN_OR_RETURN(StatusImage image, ReplayImage(data));
  return std::move(image.paragraphs);
}

support::Result<StatusImage> StatusDb::ReplayImage(
    std::span<const std::uint8_t> data) {
  StatusImage image;
  // Ordered map: the fold is last-writer-wins, the iteration order gives
  // recovery its deterministic (vin, app) ordering.
  std::map<std::pair<std::string, std::string>, StatusParagraph> latest;
  auto fold = [&latest, &image](std::span<const std::uint8_t> payload) {
    if (IsCatalogRecord(payload)) {
      return ApplyCatalogRecord(payload, image.catalog);
    }
    auto paragraph = DecodeParagraph(payload);
    DACM_RETURN_IF_ERROR(paragraph.status());
    auto key = std::make_pair(paragraph->vin, paragraph->app);
    if (paragraph->state == DbState::kNotInstalled) {
      latest.erase(key);
    } else {
      latest.insert_or_assign(std::move(key), std::move(*paragraph));
    }
    return support::OkStatus();
  };
  DACM_ASSIGN_OR_RETURN(image.stats, support::ReplayRecords(data, fold));
  image.paragraphs.reserve(latest.size());
  constexpr std::uint64_t kFrameHeaderBytes = 8;  // u32 len + u32 crc
  image.live_bytes =
      kFrameHeaderBytes + EncodeCatalogImage(image.catalog).size();
  for (auto& [key, paragraph] : latest) {
    image.live_bytes += kFrameHeaderBytes + EncodeParagraph(paragraph).size();
    image.paragraphs.push_back(std::move(paragraph));
  }
  return image;
}

}  // namespace dacm::server
