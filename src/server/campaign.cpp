#include "server/campaign.hpp"

#include <algorithm>

#include "server/journal.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/sink.hpp"
#include "support/trace.hpp"

namespace dacm::server {

std::string_view CampaignRowStateName(CampaignRowState state) {
  switch (state) {
    case CampaignRowState::kPending: return "pending";
    case CampaignRowState::kPushed: return "pushed";
    case CampaignRowState::kNacked: return "nacked";
    case CampaignRowState::kOffline: return "offline";
    case CampaignRowState::kRetrying: return "retrying";
    case CampaignRowState::kDone: return "done";
    case CampaignRowState::kFailed: return "failed";
  }
  return "?";
}

std::string_view CampaignStatusName(CampaignStatus status) {
  switch (status) {
    case CampaignStatus::kRunning: return "running";
    case CampaignStatus::kConverged: return "converged";
    case CampaignStatus::kAborted: return "aborted";
    case CampaignStatus::kExhausted: return "exhausted";
  }
  return "?";
}

namespace {

using support::AppendNumber;
using support::HashSink;
using support::StringSink;

bool Retriable(CampaignRowState state) {
  switch (state) {
    case CampaignRowState::kPending:
    case CampaignRowState::kPushed:
    case CampaignRowState::kNacked:
    case CampaignRowState::kOffline:
    case CampaignRowState::kRetrying:
      return true;
    case CampaignRowState::kDone:
    case CampaignRowState::kFailed:
      return false;
  }
  return false;
}

}  // namespace

CampaignEngine::CampaignEngine(sim::Simulator& simulator, TrustedServer& server)
    : simulator_(simulator), server_(server) {}

support::Result<CampaignId> CampaignEngine::StartDeploy(
    UserId user, std::string app_name, std::span<const std::string> vins,
    RetryPolicy policy) {
  if (!server_.HasApp(app_name)) {
    return support::NotFound("app: " + app_name);
  }
  return Start(CampaignKind::kDeploy, user, std::move(app_name), vins, policy);
}

support::Result<CampaignId> CampaignEngine::StartRollback(
    UserId user, std::string app_name, std::span<const std::string> vins,
    RetryPolicy policy) {
  return Start(CampaignKind::kRollback, user, std::move(app_name), vins, policy);
}

support::Result<CampaignId> CampaignEngine::Start(
    CampaignKind kind, UserId user, std::string app_name,
    std::span<const std::string> vins, RetryPolicy policy) {
  if (vins.empty()) return support::InvalidArgument("campaign without vehicles");
  if (policy.max_waves == 0) {
    return support::InvalidArgument("RetryPolicy.max_waves must be >= 1");
  }
  auto campaign = std::make_unique<Campaign>();
  campaign->id = CampaignId(static_cast<std::uint32_t>(campaigns_.size()));
  campaign->kind = kind;
  campaign->user = user;
  campaign->app_name = std::move(app_name);
  campaign->policy = policy;
  campaign->started_at = simulator_.Now();
  campaign->rows.reserve(vins.size());
  for (const std::string& vin : vins) {
    CampaignRow row;
    row.vin = vin;
    campaign->rows.push_back(std::move(row));
  }
  const CampaignId id = campaign->id;
  const std::size_t index = campaigns_.size();
  campaigns_.push_back(std::move(campaign));
  DACM_LOG_INFO("campaign")
      << (kind == CampaignKind::kDeploy ? "deploy" : "rollback") << " campaign "
      << id << " started: app=" << campaigns_.back()->app_name
      << " fleet=" << vins.size();
  if (journal_ != nullptr) {
    const Campaign& started = *campaigns_.back();
    const support::Status logged = journal_->AppendStart(
        id.value(), kind, started.user.value(), started.app_name,
        started.policy, started.started_at, started.rows);
    if (!logged.ok()) {
      DACM_LOG_WARN("campaign")
          << "journal start write failed: " << logged.ToString();
    }
  }
  support::Metrics::Instance()
      .GetCounter("dacm_campaigns_started_total")
      .Inc();
  support::Tracer::Instance().Instant(
      0, "campaign.start", "campaign", simulator_.Now(),
      {"campaign", campaigns_.back()->id.value()},
      {"fleet", static_cast<std::uint64_t>(vins.size())}, {}, "app",
      campaigns_.back()->app_name);
  ScheduleTick(index, simulator_.Now());
  return id;
}

const CampaignEngine::Campaign* CampaignEngine::Find(CampaignId id) const {
  if (!id.valid() || id.value() >= campaigns_.size()) return nullptr;
  return campaigns_[id.value()].get();
}

support::Status CampaignEngine::Forget(CampaignId id) {
  const Campaign* campaign = Find(id);
  if (campaign == nullptr) return support::NotFound("unknown campaign");
  if (campaign->status == CampaignStatus::kRunning) {
    return support::FailedPrecondition("campaign still running");
  }
  // The slot stays (ids are vector indices); only the row table goes.
  // A late tick against the retired id hits the null-slot guard in
  // Tick(), so a timer that somehow outlives the campaign is inert.
  campaigns_[id.value()].reset();
  if (journal_ != nullptr) {
    const support::Status logged = journal_->AppendForget(id.value());
    if (!logged.ok()) {
      DACM_LOG_WARN("campaign")
          << "journal forget write failed: " << logged.ToString();
    }
  }
  return support::OkStatus();
}

support::Status CampaignEngine::Recover(
    std::span<const std::uint8_t> journal_image) {
  if (!campaigns_.empty()) {
    return support::FailedPrecondition("recover requires a fresh engine");
  }
  DACM_ASSIGN_OR_RETURN(std::vector<RecoveredCampaign> recovered,
                        ReplayCampaignJournal(journal_image));
  campaigns_.reserve(recovered.size());
  for (RecoveredCampaign& image : recovered) {
    const std::size_t index = campaigns_.size();
    if (image.forgotten) {
      // Preserve the slot so later ids keep their alignment.
      campaigns_.push_back(nullptr);
      continue;
    }
    auto campaign = std::make_unique<Campaign>();
    campaign->id = CampaignId(image.id);
    campaign->kind = image.kind;
    campaign->user = UserId(image.user);
    campaign->app_name = std::move(image.app_name);
    campaign->policy = image.policy;
    campaign->status = image.status;
    campaign->rows = std::move(image.rows);
    campaign->waves_pushed = image.waves_pushed;
    campaign->total_pushes = image.total_pushes;
    campaign->started_at = image.started_at;
    campaign->last_push_at = image.last_push_at;
    campaign->finished_at = image.finished_at;
    campaign->next_tick_at = image.next_tick_at;
    const bool running = campaign->status == CampaignStatus::kRunning;
    campaigns_.push_back(std::move(campaign));
    if (running) {
      // Resume the retry cadence where the dead engine left off; a tick
      // that was already overdue when the server died fires now.
      ScheduleTick(index,
                   std::max(campaigns_.back()->next_tick_at, simulator_.Now()));
    }
  }
  DACM_LOG_INFO("campaign") << "recovered " << campaigns_.size()
                            << " campaign(s) from journal";
  return support::OkStatus();
}

bool CampaignEngine::Finished(CampaignId id) const {
  const Campaign* campaign = Find(id);
  return campaign != nullptr && campaign->status != CampaignStatus::kRunning;
}

support::Result<CampaignSnapshot> CampaignEngine::Snapshot(CampaignId id) const {
  const Campaign* campaign = Find(id);
  if (campaign == nullptr) return support::NotFound("unknown campaign");
  CampaignSnapshot snapshot;
  snapshot.id = campaign->id;
  snapshot.kind = campaign->kind;
  snapshot.status = campaign->status;
  snapshot.rows = campaign->rows.size();
  snapshot.waves_pushed = campaign->waves_pushed;
  snapshot.total_pushes = campaign->total_pushes;
  snapshot.started_at = campaign->started_at;
  snapshot.finished_at = campaign->finished_at;
  for (const CampaignRow& row : campaign->rows) {
    switch (row.state) {
      case CampaignRowState::kPending: ++snapshot.pending; break;
      case CampaignRowState::kPushed: ++snapshot.pushed; break;
      case CampaignRowState::kNacked: ++snapshot.nacked; break;
      case CampaignRowState::kOffline: ++snapshot.offline; break;
      case CampaignRowState::kRetrying: ++snapshot.retrying; break;
      case CampaignRowState::kDone: ++snapshot.done; break;
      case CampaignRowState::kFailed: ++snapshot.failed; break;
    }
  }
  return snapshot;
}

support::Result<std::vector<sim::SimTime>> CampaignEngine::TimesToDone(
    CampaignId id) const {
  const Campaign* campaign = Find(id);
  if (campaign == nullptr) return support::NotFound("unknown campaign");
  std::vector<sim::SimTime> times;
  times.reserve(campaign->rows.size());
  for (const CampaignRow& row : campaign->rows) {
    if (row.state != CampaignRowState::kDone) continue;
    times.push_back(row.done_at - campaign->started_at);
  }
  return times;
}

const CampaignRow* CampaignEngine::FindRow(CampaignId id,
                                           std::string_view vin) const {
  const Campaign* campaign = Find(id);
  if (campaign == nullptr) return nullptr;
  for (const CampaignRow& row : campaign->rows) {
    if (row.vin == vin) return &row;
  }
  return nullptr;
}

template <typename Sink>
void CampaignEngine::Format(const Campaign* campaign, Sink& sink) const {
  if (campaign == nullptr) {
    sink.Append("unknown campaign");
    return;
  }
  sink.Append("campaign ");
  AppendNumber(sink, campaign->id.value());
  sink.Append(campaign->kind == CampaignKind::kDeploy ? " deploy "
                                                      : " rollback ");
  sink.Append(campaign->app_name);
  sink.Append(" status=");
  sink.Append(CampaignStatusName(campaign->status));
  sink.Append(" waves=");
  AppendNumber(sink, campaign->waves_pushed);
  sink.Append(" pushes=");
  AppendNumber(sink, campaign->total_pushes);
  sink.Append(" started=");
  AppendNumber(sink, campaign->started_at);
  sink.Append(" finished=");
  AppendNumber(sink, campaign->finished_at);
  sink.Append("\n");
  for (const CampaignRow& row : campaign->rows) {
    sink.Append(row.vin);
    sink.Append(" state=");
    sink.Append(CampaignRowStateName(row.state));
    sink.Append(" attempts=");
    AppendNumber(sink, row.attempts);
    sink.Append(" done_at=");
    AppendNumber(sink, row.done_at);
    if (row.error != support::ErrorCode::kOk) {
      sink.Append(" error=");
      sink.Append(support::ErrorCodeName(row.error));
    }
    sink.Append("\n");
  }
}

std::string CampaignEngine::Describe(CampaignId id) const {
  StringSink sink;
  Format(Find(id), sink);
  return std::move(sink.out);
}

std::uint64_t CampaignEngine::Fingerprint(CampaignId id) const {
  HashSink sink;
  Format(Find(id), sink);
  return sink.hash;
}

sim::SimTime CampaignEngine::Backoff(const RetryPolicy& policy,
                                     std::size_t waves_pushed) const {
  // Gap between wave `waves_pushed` and the next one.
  double backoff = static_cast<double>(policy.initial_backoff);
  for (std::size_t i = 1; i < waves_pushed; ++i) {
    backoff *= policy.backoff_multiplier;
    if (backoff >= static_cast<double>(policy.max_backoff)) {
      return policy.max_backoff;
    }
  }
  return std::min<sim::SimTime>(policy.max_backoff,
                                static_cast<sim::SimTime>(backoff));
}

void CampaignEngine::ScheduleTick(std::size_t index, sim::SimTime at) {
  Campaign& campaign = *campaigns_[index];
  campaign.next_tick_at = at;
  // Each (re)schedule starts a new epoch, so at most one pending tick is
  // ever live per campaign; the alive token outlives `this` and retires
  // timers still in the wheel when the engine is destroyed mid-campaign.
  const std::uint64_t epoch = ++campaign.epoch;
  simulator_.ScheduleAt(
      at, [this, index, epoch,
           alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) return;
        Tick(index, epoch);
      });
}

void CampaignEngine::Evaluate(Campaign& campaign) {
  for (std::size_t i = 0; i < campaign.rows.size(); ++i) {
    CampaignRow& row = campaign.rows[i];
    if (!Retriable(row.state)) continue;
    auto state = server_.AppState(row.vin, campaign.app_name);
    if (campaign.kind == CampaignKind::kDeploy) {
      if (state.ok() && *state == InstallState::kInstalled) {
        row.state = CampaignRowState::kDone;
        row.done_at = simulator_.Now();
        row.error = support::ErrorCode::kOk;
        campaign.dirty.push_back(static_cast<std::uint32_t>(i));
      } else if (state.ok() && *state == InstallState::kFailed) {
        row.state = CampaignRowState::kNacked;
        campaign.dirty.push_back(static_cast<std::uint32_t>(i));
      }
      // kPending rows (acks lost) and missing rows (never pushed) keep
      // their engine state; the next wave picks them up.
    } else {
      // Rollback converges when the row is gone — but only for vehicles
      // the server actually knows: an unknown VIN must fall through to
      // the wave push, whose NotFound rejection fails the row instead of
      // reporting a fleet the server never touched as converged.
      if (!state.ok() && server_.HasVehicle(row.vin)) {
        row.state = CampaignRowState::kDone;
        row.done_at = simulator_.Now();
        row.error = support::ErrorCode::kOk;
        campaign.dirty.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
}

void CampaignEngine::Finish(Campaign& campaign, CampaignStatus status) {
  for (std::size_t i = 0; i < campaign.rows.size(); ++i) {
    CampaignRow& row = campaign.rows[i];
    if (!Retriable(row.state)) continue;
    row.state = CampaignRowState::kFailed;
    if (row.error == support::ErrorCode::kOk) {
      // Failed without a recorded rejection: the campaign ran out of
      // road (abort threshold or wave budget) while the row was still
      // offline / unacked — kUnavailable is the honest summary.
      row.error = support::ErrorCode::kUnavailable;
    }
    campaign.dirty.push_back(static_cast<std::uint32_t>(i));
  }
  campaign.status = status;
  campaign.finished_at = simulator_.Now();
  // One whole-campaign span (the flight recorder's top-level track) plus
  // the terminal instant; ts/dur are sim time, status is the enum value.
  auto& tracer = support::Tracer::Instance();
  tracer.Span(0, "campaign.run", "campaign", campaign.started_at,
              campaign.finished_at - campaign.started_at,
              {"campaign", campaign.id.value()},
              {"waves", campaign.waves_pushed},
              {"pushes", campaign.total_pushes});
  tracer.Instant(0, "campaign.finish", "campaign", campaign.finished_at,
                 {"campaign", campaign.id.value()},
                 {"status", static_cast<std::uint64_t>(status)}, {}, "outcome",
                 CampaignStatusName(status));
  support::Metrics::Instance()
      .GetCounter(status == CampaignStatus::kConverged
                      ? "dacm_campaigns_converged_total"
                      : "dacm_campaigns_failed_total")
      .Inc();
  DACM_LOG_INFO("campaign") << "campaign " << campaign.id << " finished "
                            << CampaignStatusName(status) << " after "
                            << campaign.waves_pushed << " wave(s), "
                            << campaign.total_pushes << " push(es)";
}

void CampaignEngine::PushWave(Campaign& campaign,
                              const std::vector<std::size_t>& retry) {
  std::vector<std::string> vins;
  vins.reserve(retry.size());
  for (std::size_t index : retry) {
    campaign.rows[index].state = CampaignRowState::kRetrying;
    vins.push_back(campaign.rows[index].vin);
    campaign.dirty.push_back(static_cast<std::uint32_t>(index));
  }
  ++campaign.waves_pushed;
  campaign.last_push_at = simulator_.Now();

  auto outcomes =
      server_.CampaignWavePush(campaign.user, campaign.app_name, campaign.kind, vins);

  std::size_t pushed = 0, offline = 0, rejected = 0, done = 0;
  for (std::size_t i = 0; i < retry.size(); ++i) {
    CampaignRow& row = campaign.rows[retry[i]];
    WaveOutcome& outcome = outcomes[i];
    switch (outcome.action) {
      case WaveOutcome::Action::kAlreadyDone:
        row.state = CampaignRowState::kDone;
        if (row.done_at == 0) row.done_at = simulator_.Now();
        row.error = support::ErrorCode::kOk;
        ++done;
        break;
      case WaveOutcome::Action::kPushed:
        row.state = CampaignRowState::kPushed;
        ++row.attempts;
        ++campaign.total_pushes;
        ++pushed;
        break;
      case WaveOutcome::Action::kOffline:
        row.state = CampaignRowState::kOffline;
        row.error = outcome.status.code();
        ++row.attempts;
        ++campaign.total_pushes;
        ++offline;
        break;
      case WaveOutcome::Action::kRejected:
        row.state = CampaignRowState::kFailed;
        row.error = outcome.status.code();
        ++rejected;
        break;
    }
  }
  DACM_LOG_INFO("campaign") << "campaign " << campaign.id << " wave "
                            << campaign.waves_pushed << ": pushed=" << pushed
                            << " offline=" << offline << " rejected=" << rejected
                            << " already-done=" << done;
  // PushWave runs on the sim thread, so lane 0 owns the wave timeline.
  // Three args is the event's capacity: rejected/done ride in a second
  // instant only when they are non-zero (the common case emits one event).
  auto& tracer = support::Tracer::Instance();
  tracer.Instant(0, "campaign.wave", "campaign", simulator_.Now(),
                 {"wave", campaign.waves_pushed}, {"pushed", pushed},
                 {"offline", offline});
  if (rejected != 0 || done != 0) {
    tracer.Instant(0, "campaign.wave.skips", "campaign", simulator_.Now(),
                   {"wave", campaign.waves_pushed}, {"rejected", rejected},
                   {"already_done", done});
  }
  support::Metrics::Instance()
      .GetCounter("dacm_campaign_waves_total")
      .Inc();
}

void CampaignEngine::CommitTick(Campaign& campaign) {
  if (journal_ == nullptr) {
    campaign.dirty.clear();
    return;
  }
  support::Status logged = support::OkStatus();
  if (!campaign.dirty.empty()) {
    std::sort(campaign.dirty.begin(), campaign.dirty.end());
    campaign.dirty.erase(
        std::unique(campaign.dirty.begin(), campaign.dirty.end()),
        campaign.dirty.end());
    std::vector<JournalRowEntry> entries;
    entries.reserve(campaign.dirty.size());
    for (const std::uint32_t row_index : campaign.dirty) {
      const CampaignRow& row = campaign.rows[row_index];
      JournalRowEntry entry;
      entry.index = row_index;
      entry.state = row.state;
      entry.attempts = static_cast<std::uint32_t>(row.attempts);
      entry.done_at = row.done_at;
      entry.error = row.error;
      entries.push_back(entry);
    }
    logged = journal_->AppendRows(campaign.id.value(), entries);
    campaign.dirty.clear();
  }
  if (logged.ok()) {
    logged = campaign.status == CampaignStatus::kRunning
                 ? journal_->AppendWave(campaign.id.value(),
                                        campaign.waves_pushed,
                                        campaign.total_pushes,
                                        campaign.last_push_at,
                                        campaign.next_tick_at)
                 : journal_->AppendFinish(campaign.id.value(), campaign.status,
                                          campaign.finished_at);
  }
  if (!logged.ok()) {
    // Journal write failures degrade durability, never the live rollout.
    DACM_LOG_WARN("campaign")
        << "journal commit failed for campaign " << campaign.id << ": "
        << logged.ToString();
  }
  // Every commit is a watermark checkpoint opportunity: the journal only
  // grows through commits, so checking here bounds its size without a
  // timer of its own.
  MaybeCompactJournal();
}

support::Status CampaignEngine::CompactJournal() {
  if (journal_ == nullptr) return support::OkStatus();
  support::CheckpointWriter checkpoint;
  for (std::size_t i = 0; i < campaigns_.size(); ++i) {
    const std::uint32_t id = static_cast<std::uint32_t>(i);
    const Campaign* campaign = campaigns_[i].get();
    if (campaign == nullptr) {
      // Retired slot: the tombstone alone survives — the whole
      // kStart/kRows/kWave chain of the forgotten campaign is dropped.
      DACM_RETURN_IF_ERROR(
          checkpoint.Append(CampaignJournal::EncodeForget(id)));
      continue;
    }
    DACM_RETURN_IF_ERROR(checkpoint.Append(CampaignJournal::EncodeStart(
        id, campaign->kind, campaign->user.value(), campaign->app_name,
        campaign->policy, campaign->started_at, campaign->rows)));
    std::vector<JournalRowEntry> entries;
    for (std::size_t r = 0; r < campaign->rows.size(); ++r) {
      const CampaignRow& row = campaign->rows[r];
      if (row.state == CampaignRowState::kPending && row.attempts == 0 &&
          row.done_at == 0 && row.error == support::ErrorCode::kOk) {
        continue;  // default-constructed by the kStart replay already
      }
      JournalRowEntry entry;
      entry.index = static_cast<std::uint32_t>(r);
      entry.state = row.state;
      entry.attempts = static_cast<std::uint32_t>(row.attempts);
      entry.done_at = row.done_at;
      entry.error = row.error;
      entries.push_back(entry);
    }
    if (!entries.empty()) {
      DACM_RETURN_IF_ERROR(
          checkpoint.Append(CampaignJournal::EncodeRows(id, entries)));
    }
    // The wave record carries counters kStart/kFinish do not
    // (waves_pushed, total_pushes), so it is emitted for finished
    // campaigns too — replay folds it before the finish marker.
    DACM_RETURN_IF_ERROR(checkpoint.Append(CampaignJournal::EncodeWave(
        id, campaign->waves_pushed, campaign->total_pushes,
        campaign->last_push_at, campaign->next_tick_at)));
    if (campaign->status != CampaignStatus::kRunning) {
      DACM_RETURN_IF_ERROR(checkpoint.Append(CampaignJournal::EncodeFinish(
          id, campaign->status, campaign->finished_at)));
    }
  }
  DACM_RETURN_IF_ERROR(journal_->Rotate(checkpoint.image()));
  DACM_LOG_INFO("campaign") << "journal compacted: " << checkpoint.records()
                            << " record(s), " << checkpoint.image_bytes()
                            << " byte(s) across " << campaigns_.size()
                            << " slot(s)";
  return support::OkStatus();
}

void CampaignEngine::MaybeCompactJournal() {
  if (journal_ == nullptr || journal_compact_after_bytes_ == 0 ||
      journal_->bytes_appended() < journal_compact_after_bytes_) {
    return;
  }
  const support::Status compacted = CompactJournal();
  if (!compacted.ok()) {
    DACM_LOG_WARN("campaign")
        << "journal compaction failed: " << compacted.ToString();
  }
}

void CampaignEngine::Tick(std::size_t index, std::uint64_t epoch) {
  if (index >= campaigns_.size() || campaigns_[index] == nullptr) {
    return;  // forgotten: the id is retired, the timer is inert
  }
  Campaign& campaign = *campaigns_[index];
  if (campaign.epoch != epoch) return;  // superseded schedule
  if (campaign.status != CampaignStatus::kRunning) return;

  // Belt and braces: arrival-time flush events normally applied every
  // staged acknowledgement already.
  server_.FlushAckInboxes();
  Evaluate(campaign);

  std::vector<std::size_t> retry;
  std::size_t nacked = 0, failed = 0;
  for (std::size_t i = 0; i < campaign.rows.size(); ++i) {
    const CampaignRowState state = campaign.rows[i].state;
    if (state == CampaignRowState::kNacked) ++nacked;
    if (state == CampaignRowState::kFailed) ++failed;
    if (Retriable(state)) retry.push_back(i);
  }

  if (campaign.waves_pushed > 0 &&
      static_cast<double>(nacked) / static_cast<double>(campaign.rows.size()) >=
          campaign.policy.abort_nack_fraction) {
    Finish(campaign, CampaignStatus::kAborted);
    CommitTick(campaign);
    return;
  }
  if (retry.empty()) {
    Finish(campaign, failed == 0 ? CampaignStatus::kConverged
                                 : CampaignStatus::kExhausted);
    CommitTick(campaign);
    return;
  }
  if (campaign.waves_pushed >= campaign.policy.max_waves) {
    Finish(campaign, CampaignStatus::kExhausted);
    CommitTick(campaign);
    return;
  }

  const sim::SimTime next_push_at =
      campaign.waves_pushed == 0
          ? simulator_.Now()
          : campaign.last_push_at + Backoff(campaign.policy, campaign.waves_pushed);
  if (next_push_at > simulator_.Now()) {
    // Backoff still running: come back when the next wave is due.
    ScheduleTick(index, next_push_at);
    CommitTick(campaign);
    return;
  }
  PushWave(campaign, retry);
  // The wave ran inside a simulator event, so its worker-staged sends
  // would otherwise wait for the queue to drain (which engine ticks keep
  // non-empty).  Fold them in now: deliveries schedule at push time +
  // latency, through the same deterministic peer-order barrier.
  simulator_.DrainStaged();
  ScheduleTick(index, simulator_.Now() + campaign.policy.settle_delay);
  // Commit *after* the pushes went out: at-least-once.  A crash inside
  // this tick replays the wave from the previous commit; the server's
  // wave path (kAlreadyDone, idempotent repush) absorbs the duplicates.
  CommitTick(campaign);
}

}  // namespace dacm::server
