#include "server/fleet_store.hpp"

#include <algorithm>
#include <cstring>

namespace dacm::server {
namespace {

std::uint64_t Fnv1a(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

std::uint32_t FleetStore::Find(std::string_view vin) const {
  if (slots_.empty()) return kNil;
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = Fnv1a(vin) & mask;; i = (i + 1) & mask) {
    const std::uint32_t handle = slots_[i];
    if (handle == kNil) return kNil;
    if (vins_[handle] == vin) return handle;
  }
}

std::uint32_t FleetStore::Intern(std::string_view vin) {
  // Grow before probing so the probe loop always finds an empty slot.
  if ((vins_.size() + 1) * 10 >= slots_.size() * 7) {
    Rehash(slots_.empty() ? 1024 : slots_.size() * 2);
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = Fnv1a(vin) & mask;
  for (; slots_[i] != kNil; i = (i + 1) & mask) {
    if (vins_[slots_[i]] == vin) return slots_[i];
  }
  const std::uint32_t handle = static_cast<std::uint32_t>(vins_.size());
  vins_.push_back(Store(vin));
  model_.push_back(kUnbound);
  owner_.push_back(UserId::Invalid());
  row_head_.push_back(kNil);
  peer_.emplace_back();
  slots_[i] = handle;
  return handle;
}

void FleetStore::Rehash(std::size_t slot_count) {
  slots_.assign(slot_count, kNil);
  const std::size_t mask = slot_count - 1;
  for (std::uint32_t handle = 0; handle < vins_.size(); ++handle) {
    std::size_t i = Fnv1a(vins_[handle]) & mask;
    while (slots_[i] != kNil) i = (i + 1) & mask;
    slots_[i] = handle;
  }
}

std::string_view FleetStore::Store(std::string_view vin) {
  const std::size_t need = vin.size();
  if (arena_used_ + need > kArenaChunk) {
    arena_.push_back(std::make_unique<char[]>(std::max(need, kArenaChunk)));
    arena_used_ = 0;
  }
  char* dest = arena_.back().get() + arena_used_;
  std::memcpy(dest, vin.data(), need);
  arena_used_ += need;
  return {dest, need};
}

std::uint32_t FleetStore::AddRow(std::uint32_t v) {
  std::uint32_t r;
  if (free_rows_ != kNil) {
    r = free_rows_;
    free_rows_ = rows_[r].next;
    rows_[r] = InstallRow{};
  } else {
    r = static_cast<std::uint32_t>(rows_.size());
    rows_.emplace_back();
  }
  std::uint32_t* tail = &row_head_[v];
  while (*tail != kNil) tail = &rows_[*tail].next;
  *tail = r;
  ++live_rows_;
  return r;
}

void FleetStore::RemoveRow(std::uint32_t v, std::uint32_t r) {
  std::uint32_t* link = &row_head_[v];
  while (*link != r) link = &rows_[*link].next;
  *link = rows_[r].next;
  rows_[r] = InstallRow{};
  rows_[r].next = free_rows_;
  free_rows_ = r;
  --live_rows_;
}

std::uint32_t FleetStore::FindRow(std::uint32_t v,
                                  std::string_view app_name) const {
  for (std::uint32_t r = row_head_[v]; r != kNil; r = rows_[r].next) {
    if (rows_[r].manifest->app_name == app_name) return r;
  }
  return kNil;
}

UsedIdMap FleetStore::DeriveUsedIds(std::uint32_t v,
                                    std::uint32_t excluding_row) const {
  UsedIdMap used;
  for (std::uint32_t r = row_head_[v]; r != kNil; r = rows_[r].next) {
    if (r == excluding_row) continue;
    for (const BatchManifest::Plugin& plugin : rows_[r].manifest->plugins) {
      PortIdSet& set = used[plugin.ecu_id];
      for (const pirte::PicEntry& entry : plugin.pic.entries) {
        set.insert(entry.unique_id);
      }
    }
  }
  return used;
}

void FleetStore::AddPeer(std::uint32_t v, std::shared_ptr<sim::NetPeer> peer) {
  if (peer_[v] == nullptr) {
    peer_[v] = std::move(peer);
  } else {
    extra_peers_[v].push_back(std::move(peer));
  }
}

sim::NetPeer* FleetStore::FirstConnectedPeer(std::uint32_t v) const {
  if (peer_[v] != nullptr && peer_[v]->connected()) return peer_[v].get();
  auto extra = extra_peers_.find(v);
  if (extra == extra_peers_.end()) return nullptr;
  for (const auto& peer : extra->second) {
    if (peer->connected()) return peer.get();
  }
  return nullptr;
}

}  // namespace dacm::server
