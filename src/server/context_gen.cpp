#include "server/context_gen.hpp"

#include <algorithm>

namespace dacm::server {

namespace {

/// Claims ids from `used` and releases every claim on destruction unless
/// committed — generation failures must not leak ids into the vehicle's
/// persistent bitmap.
class IdClaims {
 public:
  explicit IdClaims(UsedIdMap& used) : used_(used) {}
  ~IdClaims() {
    if (committed_) return;
    for (const auto& [ecu, id] : claimed_) used_[ecu].erase(id);
  }

  support::Result<std::uint8_t> Allocate(std::uint32_t ecu) {
    std::optional<std::uint8_t> id = used_[ecu].AllocateLowest();
    if (!id.has_value()) {
      return support::ResourceExhausted("no free port ids on ECU " +
                                        std::to_string(ecu));
    }
    claimed_.emplace_back(ecu, *id);
    return *id;
  }

  void Commit() { committed_ = true; }

 private:
  UsedIdMap& used_;
  std::vector<std::pair<std::uint32_t, std::uint8_t>> claimed_;
  bool committed_ = false;
};

}  // namespace

UsedIdMap CollectUsedIds(const Vehicle& vehicle) {
  UsedIdMap used;
  for (const InstalledApp& app : vehicle.installed) {
    for (const InstalledApp::PluginRecord& plugin : app.plugins) {
      for (const pirte::PicEntry& entry : plugin.pic.entries) {
        used[plugin.ecu_id].insert(entry.unique_id);
      }
    }
  }
  return used;
}

support::Result<std::vector<GeneratedPackage>> GeneratePackages(
    const App& app, const SwConf& conf, const SystemSwConf& system_sw,
    UsedIdMap& used_ids) {
  IdClaims claims(used_ids);
  // Pass 1 — PIC: assign SW-C-scope unique ids to every plug-in port,
  // "using the knowledge about the already installed plug-ins".
  struct PluginCtx {
    const PluginDecl* decl = nullptr;
    std::uint32_t ecu = 0;
    pirte::PortInitContext pic;
  };
  std::vector<PluginCtx> contexts;
  contexts.reserve(app.plugins.size());
  for (const PluginDecl& plugin : app.plugins) {
    const PlacementDecl* placement = conf.PlacementOf(plugin.name);
    if (placement == nullptr) {
      return support::Incompatible("SW conf has no placement for plug-in " +
                                   plugin.name);
    }
    PluginCtx ctx;
    ctx.decl = &plugin;
    ctx.ecu = placement->ecu_id;
    ctx.pic.entries.reserve(plugin.ports.size());
    for (const PluginPortDecl& port : plugin.ports) {
      pirte::PicEntry entry;
      entry.local_index = port.local_index;
      entry.port_name = port.name;
      entry.direction = port.direction;
      DACM_ASSIGN_OR_RETURN(entry.unique_id, claims.Allocate(ctx.ecu));
      ctx.pic.entries.push_back(std::move(entry));
    }
    contexts.push_back(std::move(ctx));
  }

  auto find_ctx = [&](const std::string& plugin) -> PluginCtx* {
    for (PluginCtx& ctx : contexts) {
      if (ctx.decl->name == plugin) return &ctx;
    }
    return nullptr;
  };
  auto unique_id_of = [&](const PluginCtx& ctx,
                          std::uint8_t local) -> support::Result<std::uint8_t> {
    for (const pirte::PicEntry& entry : ctx.pic.entries) {
      if (entry.local_index == local) return entry.unique_id;
    }
    return support::Incompatible("connection references undeclared port P" +
                                 std::to_string(local) + " on " + ctx.decl->name);
  };

  // Pass 2 — PLC + ECC: "the port connection information, found in SW
  // conf, is translated into a PLC context"; external connections yield
  // ECC entries attached to the plug-in's own package (the ECM extracts
  // them in flight).
  std::unordered_map<std::string, pirte::PortLinkingContext> plcs;
  std::unordered_map<std::string, pirte::ExternalConnectionContext> eccs;

  for (const ConnectionDecl& connection : conf.connections) {
    PluginCtx* ctx = find_ctx(connection.plugin);
    if (ctx == nullptr) {
      return support::Incompatible("connection references unknown plug-in " +
                                   connection.plugin);
    }
    // Every declared port must exist.
    DACM_RETURN_IF_ERROR(unique_id_of(*ctx, connection.local_port).status());

    pirte::PlcEntry entry;
    entry.local_port = connection.local_port;

    switch (connection.target) {
      case ConnectionDecl::Target::kNone: {
        entry.kind = pirte::PlcKind::kUnconnected;
        plcs[connection.plugin].entries.push_back(std::move(entry));
        break;
      }
      case ConnectionDecl::Target::kVirtualPort: {
        const VirtualPortDesc* vp = system_sw.FindByName(connection.virtual_port_name);
        if (vp == nullptr) {
          return support::Incompatible("vehicle exposes no virtual port named " +
                                       connection.virtual_port_name);
        }
        if (vp->ecu_id != ctx->ecu) {
          return support::Incompatible(
              "virtual port " + vp->name + " lives on ECU " +
              std::to_string(vp->ecu_id) + " but plug-in " + ctx->decl->name +
              " is placed on ECU " + std::to_string(ctx->ecu));
        }
        entry.kind = pirte::PlcKind::kVirtual;
        entry.virtual_port = vp->id;
        plcs[connection.plugin].entries.push_back(std::move(entry));
        break;
      }
      case ConnectionDecl::Target::kPeerPlugin: {
        PluginCtx* peer = find_ctx(connection.peer_plugin);
        if (peer == nullptr) {
          return support::Incompatible("connection references unknown peer plug-in " +
                                       connection.peer_plugin);
        }
        if (peer->ecu == ctx->ecu) {
          // Same SW-C: "their ports are linked directly in PIRTE".
          entry.kind = pirte::PlcKind::kLocalPlugin;
          entry.peer_plugin = connection.peer_plugin;
          entry.peer_local_port = connection.peer_port;
        } else {
          // Cross SW-C: route through the Type II virtual port towards the
          // peer's ECU, attaching the recipient's unique port id
          // ("P2-V0.P0" in the paper).
          const VirtualPortDesc* channel = nullptr;
          for (const VirtualPortDesc& vp : system_sw.virtual_ports) {
            if (vp.kind == 2 && vp.ecu_id == ctx->ecu && vp.peer_ecu == peer->ecu) {
              channel = &vp;
              break;
            }
          }
          if (channel == nullptr) {
            return support::Incompatible(
                "no Type II channel from ECU " + std::to_string(ctx->ecu) +
                " to ECU " + std::to_string(peer->ecu));
          }
          entry.kind = pirte::PlcKind::kVirtualRemote;
          entry.virtual_port = channel->id;
          DACM_ASSIGN_OR_RETURN(entry.remote_port_id,
                                unique_id_of(*peer, connection.peer_port));
        }
        plcs[connection.plugin].entries.push_back(std::move(entry));
        break;
      }
      case ConnectionDecl::Target::kExternalIn:
      case ConnectionDecl::Target::kExternalOut: {
        // The port itself stays PIRTE-direct; the ECC tells the ECM where
        // the external traffic goes.
        entry.kind = pirte::PlcKind::kUnconnected;
        plcs[connection.plugin].entries.push_back(std::move(entry));

        pirte::EccEntry ecc;
        ecc.direction = connection.target == ConnectionDecl::Target::kExternalIn
                            ? pirte::EccDirection::kInbound
                            : pirte::EccDirection::kOutbound;
        ecc.endpoint = connection.endpoint;
        ecc.message_id = connection.message_id;
        ecc.target_ecu = ctx->ecu;
        DACM_ASSIGN_OR_RETURN(ecc.port_unique_id,
                              unique_id_of(*ctx, connection.local_port));
        eccs[connection.plugin].entries.push_back(std::move(ecc));
        break;
      }
    }
  }

  // Pass 3 — assemble installation packages.
  std::vector<GeneratedPackage> out;
  out.reserve(contexts.size());
  for (PluginCtx& ctx : contexts) {
    GeneratedPackage generated;
    generated.plugin = ctx.decl->name;
    generated.ecu_id = ctx.ecu;
    generated.package.plugin_name = ctx.decl->name;
    generated.package.version = app.version;
    generated.package.pic = std::move(ctx.pic);
    generated.package.plc = std::move(plcs[ctx.decl->name]);
    generated.package.ecc = std::move(eccs[ctx.decl->name]);
    generated.package.binary = ctx.decl->binary;
    out.push_back(std::move(generated));
  }
  claims.Commit();
  return out;
}

}  // namespace dacm::server
