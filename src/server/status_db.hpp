// Per-VIN install status DB — the dpkg/vcpkg status-paragraph model.
//
// Every InstalledApp mutation in TrustedServer is bracketed by a status
// paragraph written *ahead* of the visible state change, with explicit
// half-installed / half-removed transition states (the Want x InstallState
// split vcpkg's statusparagraph.h inherited from dpkg).  The log is
// append-only: the latest paragraph for a (vin, app) pair wins on replay,
// and a kNotInstalled paragraph erases the pair.
//
// Paragraphs deliberately do NOT carry package bytes or batch envelopes —
// those are derived data, regenerated from the re-uploaded catalog on
// demand after recovery (see TrustedServer::MaterializeRowPackages).
// What must survive is the intent (want), how far the transition got
// (state) and the per-ECU unique port ids the row holds, so the
// recovering server can rebuild its id-occupancy bitmaps exactly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "server/catalog.hpp"
#include "support/status.hpp"
#include "support/storage.hpp"

namespace dacm::server {

/// What the user asked for (dpkg's "Want" column).
enum class Want : std::uint8_t {
  kInstall = 0,
  kDeinstall = 1,
};

/// How far the transition actually got (dpkg's "Status" column).  The
/// half states are written before a push goes out, so a crash between
/// push and acknowledgement recovers into a retriable in-flight row.
enum class DbState : std::uint8_t {
  kNotInstalled = 0,   // tombstone: erases the (vin, app) pair on replay
  kHalfInstalled = 1,  // install pushed, acks outstanding
  kInstalled = 2,      // fully acknowledged
  kHalfRemoved = 3,    // uninstall pushed, acks outstanding
  kErrorState = 4,     // a vehicle nacked the transition
};

std::string_view WantName(Want want);
std::string_view DbStateName(DbState state);

/// One durable status paragraph.
struct StatusParagraph {
  struct PluginIds {
    std::string plugin;
    std::uint32_t ecu_id = 0;
    std::vector<std::uint8_t> unique_ids;  // recorded port-id claims
  };

  std::string vin;
  std::string app;
  std::string version;
  Want want = Want::kInstall;
  DbState state = DbState::kNotInstalled;
  std::vector<PluginIds> plugins;
};

/// Everything a status-log replay folds out: the catalog (from
/// interleaved catalog records and/or a checkpoint's kImage), the live
/// paragraphs, how much of the log was durable, and the framed size of a
/// minimal checkpoint holding exactly this state — the denominator of
/// the compaction watermark's log-to-live ratio.
struct StatusImage {
  CatalogImage catalog;
  std::vector<StatusParagraph> paragraphs;
  support::ReplayStats stats;
  /// Size in bytes of the minimal checkpoint image (catalog image record
  /// + one paragraph per survivor, each CRC-framed).
  std::uint64_t live_bytes = 0;
};

/// Append-side of the DB: serializes paragraphs into CRC-framed records.
/// Thread-safe (shard workers write concurrently through RecordWriter).
class StatusDb {
 public:
  /// `sync_every_n_frames` forwards to RecordWriter: every Nth paragraph
  /// is followed by a sink Sync() (FileSink: fflush + fsync); 0 never
  /// syncs explicitly.
  explicit StatusDb(support::RecordSink& sink,
                    std::size_t sync_every_n_frames = 0)
      : sink_(sink), writer_(sink, sync_every_n_frames) {}

  /// Atomically swaps the log's contents for a checkpoint image
  /// (RecordSink::Rotate) and restarts the byte accounting.  Simulation
  /// thread only, with no concurrent writers (the server compacts
  /// between flush barriers).
  support::Status Rotate(std::span<const std::uint8_t> image) {
    DACM_RETURN_IF_ERROR(sink_.Rotate(image));
    writer_.ResetByteCount();
    return support::OkStatus();
  }

  support::Status Append(const StatusParagraph& paragraph);

  /// Appends an already-encoded payload (a catalog record, or a
  /// paragraph pre-encoded by EncodeParagraph for retry loops).
  support::Status AppendRaw(std::span<const std::uint8_t> payload);

  /// The paragraph wire encoding Append() frames — exposed so the server
  /// can encode once and retry the framed append on sink failure.
  static support::Bytes EncodeParagraph(const StatusParagraph& paragraph);

  /// Frame bytes appended since construction / ResetByteCount — the
  /// compaction watermark's input.
  std::uint64_t bytes_appended() const { return writer_.bytes_appended(); }
  void ResetByteCount() { writer_.ResetByteCount(); }

  /// Replays a status log image: folds paragraphs last-writer-wins per
  /// (vin, app), drops kNotInstalled tombstones, and returns the
  /// survivors sorted by (vin, app) so recovery is deterministic
  /// regardless of original append interleaving across shards.  A torn
  /// tail is truncated silently; a record that decodes but fails
  /// validation is kCorrupted.
  static support::Result<std::vector<StatusParagraph>> Replay(
      std::span<const std::uint8_t> data);

  /// Full replay: folds catalog records (incremental and checkpoint
  /// kImage) alongside the paragraphs.  Replay() above is the
  /// paragraphs-only view of exactly this fold.
  static support::Result<StatusImage> ReplayImage(
      std::span<const std::uint8_t> data);

 private:
  support::RecordSink& sink_;
  support::RecordWriter writer_;
};

}  // namespace dacm::server
