// Per-VIN install status DB — the dpkg/vcpkg status-paragraph model.
//
// Every InstalledApp mutation in TrustedServer is bracketed by a status
// paragraph written *ahead* of the visible state change, with explicit
// half-installed / half-removed transition states (the Want x InstallState
// split vcpkg's statusparagraph.h inherited from dpkg).  The log is
// append-only: the latest paragraph for a (vin, app) pair wins on replay,
// and a kNotInstalled paragraph erases the pair.
//
// Paragraphs deliberately do NOT carry package bytes or batch envelopes —
// those are derived data, regenerated from the re-uploaded catalog on
// demand after recovery (see TrustedServer::MaterializeRowPackages).
// What must survive is the intent (want), how far the transition got
// (state) and the per-ECU unique port ids the row holds, so the
// recovering server can rebuild its id-occupancy bitmaps exactly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"
#include "support/storage.hpp"

namespace dacm::server {

/// What the user asked for (dpkg's "Want" column).
enum class Want : std::uint8_t {
  kInstall = 0,
  kDeinstall = 1,
};

/// How far the transition actually got (dpkg's "Status" column).  The
/// half states are written before a push goes out, so a crash between
/// push and acknowledgement recovers into a retriable in-flight row.
enum class DbState : std::uint8_t {
  kNotInstalled = 0,   // tombstone: erases the (vin, app) pair on replay
  kHalfInstalled = 1,  // install pushed, acks outstanding
  kInstalled = 2,      // fully acknowledged
  kHalfRemoved = 3,    // uninstall pushed, acks outstanding
  kErrorState = 4,     // a vehicle nacked the transition
};

std::string_view WantName(Want want);
std::string_view DbStateName(DbState state);

/// One durable status paragraph.
struct StatusParagraph {
  struct PluginIds {
    std::string plugin;
    std::uint32_t ecu_id = 0;
    std::vector<std::uint8_t> unique_ids;  // recorded port-id claims
  };

  std::string vin;
  std::string app;
  std::string version;
  Want want = Want::kInstall;
  DbState state = DbState::kNotInstalled;
  std::vector<PluginIds> plugins;
};

/// Append-side of the DB: serializes paragraphs into CRC-framed records.
/// Thread-safe (shard workers write concurrently through RecordWriter).
class StatusDb {
 public:
  /// `sync_every_n_frames` forwards to RecordWriter: every Nth paragraph
  /// is followed by a sink Sync() (FileSink: fflush + fsync); 0 never
  /// syncs explicitly.
  explicit StatusDb(support::RecordSink& sink,
                    std::size_t sync_every_n_frames = 0)
      : writer_(sink, sync_every_n_frames) {}

  support::Status Append(const StatusParagraph& paragraph);

  /// Replays a status log image: folds paragraphs last-writer-wins per
  /// (vin, app), drops kNotInstalled tombstones, and returns the
  /// survivors sorted by (vin, app) so recovery is deterministic
  /// regardless of original append interleaving across shards.  A torn
  /// tail is truncated silently; a record that decodes but fails
  /// validation is kCorrupted.
  static support::Result<std::vector<StatusParagraph>> Replay(
      std::span<const std::uint8_t> data);

 private:
  support::RecordWriter writer_;
};

}  // namespace dacm::server
