// Campaign orchestration engine: retrying multi-wave rollouts.
//
// DeployCampaign (server.hpp) is single-shot: one batched push per
// vehicle, no second chances.  A real fleet converges only if somebody
// retries — vehicles are offline, links flap mid-push, ECUs nack while a
// transient clears.  The engine is that somebody: a durable per-campaign
// state machine driven entirely by simulator events.
//
// Per-VIN row life cycle (CampaignRowState):
//
//   pending ──wave──> pushed ──acked──> done
//                       │ └─nack──> nacked ─┐
//                       └──offline──────────┤
//                                           └─retrying──> pushed ... /failed
//
// A wave pushes every retriable row (sharded over the server's worker
// pool via TrustedServer::CampaignWavePush), waits `settle_delay` of
// sim-time for the acknowledgements to land, re-evaluates every row
// against the server's InstalledAPP table, and schedules the next wave
// after an exponential backoff — until the fleet converges, the nack
// fraction crosses the abort threshold, or the wave budget is exhausted.
//
// Rollback campaigns (StartRollback) run the same machine in reverse:
// one kUninstallBatch per vehicle — the kInstallBatch framing mirrored —
// converging when the vehicle's row is gone.
//
// Determinism: orchestration runs on the simulation thread; wave pushes
// and ack application use the server's shard-deterministic fan-out, so a
// seeded fault scenario (sim/fault.hpp) replays byte-identically:
// Describe() fingerprints the full row table for exactly that comparison.
//
// Durability: AttachJournal() write-ahead-logs every tick's row/wave
// transitions (server/journal.hpp); Recover() rebuilds a fresh engine
// from the journal image and resumes the pending retry waves.
//
// Lifetime: engine ticks are guarded by a weak alive token and a
// per-slot epoch, so destroying the engine (or Forget()ing a campaign)
// with a settle-delay timer still scheduled leaves an inert event, not
// a dangling callback — the kill-and-restart recovery harness does
// exactly that.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "server/server.hpp"
#include "sim/simulator.hpp"

namespace dacm::server {

class CampaignJournal;

struct CampaignTag {};
using CampaignId = support::StrongId<CampaignTag>;

/// Knobs of the per-campaign retry machine.  All times are sim-time.
struct RetryPolicy {
  /// Push waves, including the first.  Rows still retriable when the
  /// budget is spent go kFailed and the campaign finishes kExhausted.
  std::size_t max_waves = 5;
  /// Gap between a wave's pushes and the evaluation of their outcome
  /// (must cover a round trip; acks landing later are caught next wave).
  sim::SimTime settle_delay = 100 * sim::kMillisecond;
  /// Gap between wave k and wave k+1: initial_backoff *
  /// backoff_multiplier^(k-1), capped at max_backoff.
  sim::SimTime initial_backoff = 500 * sim::kMillisecond;
  double backoff_multiplier = 2.0;
  sim::SimTime max_backoff = 8 * sim::kSecond;
  /// Abort the campaign when (nacked rows / fleet size) reaches this
  /// after any wave.  1.0 aborts only an all-nack fleet; > 1.0 disables.
  double abort_nack_fraction = 1.0;
};

enum class CampaignRowState : std::uint8_t {
  kPending,   // never pushed (campaign just started, or vehicle unknown yet)
  kPushed,    // batch pushed, acknowledgement outstanding
  kNacked,    // vehicle (or one of its ECUs) rejected the batch
  kOffline,   // push failed: no live connection; eligible for a later wave
  kRetrying,  // selected for the in-flight wave (transient)
  kDone,      // converged: fully acked (deploy) / row gone (rollback)
  kFailed,    // terminal: rejected, aborted, or retry budget exhausted
};
std::string_view CampaignRowStateName(CampaignRowState state);

enum class CampaignStatus : std::uint8_t {
  kRunning,
  kConverged,  // every row kDone
  kAborted,    // nack fraction crossed RetryPolicy::abort_nack_fraction
  kExhausted,  // finished with kFailed rows (budget spent or terminal rejects)
};
std::string_view CampaignStatusName(CampaignStatus status);

struct CampaignRow {
  std::string vin;
  CampaignRowState state = CampaignRowState::kPending;
  /// Push attempts (successful or offline) across all waves.
  std::size_t attempts = 0;
  /// Sim time the row was observed done (0 until then).
  sim::SimTime done_at = 0;
  /// Last offline / rejection reason.  A bare code, not a Status: the
  /// row table is sized for million-VIN fleets, and the heap-allocated
  /// message (the VIN again, plus boilerplate) carried no information a
  /// code does not — the journal never persisted it either.
  support::ErrorCode error = support::ErrorCode::kOk;
};

/// Aggregate view of one campaign (cheap; computed from the row table).
struct CampaignSnapshot {
  CampaignId id = CampaignId::Invalid();
  CampaignKind kind = CampaignKind::kDeploy;
  CampaignStatus status = CampaignStatus::kRunning;
  std::size_t rows = 0;
  std::size_t pending = 0;
  std::size_t pushed = 0;
  std::size_t nacked = 0;
  std::size_t offline = 0;
  std::size_t retrying = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t waves_pushed = 0;
  /// Push attempts across all waves and rows (retries/vehicle =
  /// total_pushes / rows - 1 on a converged campaign).
  std::uint64_t total_pushes = 0;
  sim::SimTime started_at = 0;
  sim::SimTime finished_at = 0;  // 0 while running
};

class CampaignEngine {
 public:
  CampaignEngine(sim::Simulator& simulator, TrustedServer& server);

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Starts a retrying deploy campaign of `app_name` over `vins`.  The
  /// first wave fires at the current sim time (as a scheduled event);
  /// fails fast when the app is unknown or the fleet is empty.
  support::Result<CampaignId> StartDeploy(UserId user, std::string app_name,
                                          std::span<const std::string> vins,
                                          RetryPolicy policy = {});

  /// Starts a rollback campaign: batched uninstalls of `app_name` over
  /// `vins`, converging when every row is gone (vehicles that never had
  /// the app are done immediately).
  support::Result<CampaignId> StartRollback(UserId user, std::string app_name,
                                            std::span<const std::string> vins,
                                            RetryPolicy policy = {});

  bool Finished(CampaignId id) const;
  support::Result<CampaignSnapshot> Snapshot(CampaignId id) const;
  /// Per done-row convergence latency (done_at - started_at), row order.
  support::Result<std::vector<sim::SimTime>> TimesToDone(CampaignId id) const;
  const CampaignRow* FindRow(CampaignId id, std::string_view vin) const;
  /// Deterministic fingerprint of the whole campaign (status, waves and
  /// every row's final state) — byte-identical across identically seeded
  /// runs; determinism tests compare exactly this string.
  std::string Describe(CampaignId id) const;
  /// FNV-1a hash of exactly the bytes Describe() would return, streamed
  /// without materializing the row table as a string — the comparison
  /// handle at fleet scale, where Describe() on a million-row campaign
  /// would allocate tens of megabytes just to be hashed and thrown away.
  std::uint64_t Fingerprint(CampaignId id) const;
  /// Releases a *finished* campaign's row table (ids are never reused;
  /// queries on a forgotten id return NotFound).  Long-lived engines —
  /// the fault bench runs thousands of campaigns through one — call this
  /// after harvesting the snapshot, or memory grows with history.
  support::Status Forget(CampaignId id);
  std::size_t campaign_count() const { return campaigns_.size(); }

  /// Attaches a write-ahead journal: Start/Tick/Forget transitions are
  /// logged through it from now on.  Pass nullptr to detach.  The
  /// journal must outlive the engine (or the next Attach call).
  void AttachJournal(CampaignJournal* journal) { journal_ = journal; }

  /// Folds the engine's in-memory campaign state into a checkpoint image
  /// (fresh kStart/kRows/kWave/kFinish per live slot, a bare kForget
  /// tombstone per retired one) and atomically rotates the journal onto
  /// it — the Forget-growth fix: retired campaigns' full record chains
  /// are dropped.  Call on clean shutdown, or let the watermark below
  /// trigger it after ticks.  Never runs from a destructor: the crash
  /// harness kills engines precisely to model a server that did NOT get
  /// to compact.
  support::Status CompactJournal();

  /// Compacts automatically once the journal has grown past `bytes`
  /// since its last rotation (checked after each tick commit); 0
  /// disables (the default).
  void SetJournalCompactionWatermark(std::uint64_t bytes) {
    journal_compact_after_bytes_ = bytes;
  }

  /// Rebuilds the engine from a journal image (ReplayCampaignJournal)
  /// and schedules the resume tick of every still-running campaign at
  /// max(recorded next tick, Now()).  Only valid on an engine with no
  /// campaigns; the server must already hold the recovered install DB,
  /// or resumed waves will re-push converged rows.  Journaling of the
  /// resumed campaigns continues into the attached journal, if any.
  support::Status Recover(std::span<const std::uint8_t> journal_image);

 private:
  struct Campaign {
    CampaignId id = CampaignId::Invalid();
    CampaignKind kind = CampaignKind::kDeploy;
    UserId user = UserId::Invalid();
    std::string app_name;
    RetryPolicy policy;
    CampaignStatus status = CampaignStatus::kRunning;
    std::vector<CampaignRow> rows;
    std::size_t waves_pushed = 0;
    std::uint64_t total_pushes = 0;
    sim::SimTime started_at = 0;
    sim::SimTime last_push_at = 0;
    sim::SimTime finished_at = 0;
    /// When the next engine turn is due (journaled so recovery resumes
    /// the retry cadence instead of restarting it).
    sim::SimTime next_tick_at = 0;
    /// Bumped on every ScheduleTick: a pending tick whose captured epoch
    /// no longer matches was superseded (or the campaign was recovered)
    /// and must not fire.
    std::uint64_t epoch = 0;
    /// Row indices mutated since the last journal commit.
    std::vector<std::uint32_t> dirty;
  };

  support::Result<CampaignId> Start(CampaignKind kind, UserId user,
                                    std::string app_name,
                                    std::span<const std::string> vins,
                                    RetryPolicy policy);
  const Campaign* Find(CampaignId id) const;

  /// One engine turn: evaluate every row, finish or (re)schedule, and
  /// push the next wave once its backoff has elapsed.  `epoch` retires
  /// stale timers (see Campaign::epoch).
  void Tick(std::size_t index, std::uint64_t epoch);
  void Evaluate(Campaign& campaign);
  void PushWave(Campaign& campaign, const std::vector<std::size_t>& retry);
  void Finish(Campaign& campaign, CampaignStatus status);
  /// Streams the Describe() text into `sink` (one Append(string_view)
  /// call per fragment) — the single formatter behind Describe and
  /// Fingerprint, so the two can never drift apart.
  template <typename Sink>
  void Format(const Campaign* campaign, Sink& sink) const;
  sim::SimTime Backoff(const RetryPolicy& policy, std::size_t waves_pushed) const;
  void ScheduleTick(std::size_t index, sim::SimTime at);
  /// Journals the tick's dirtied rows plus a wave/finish marker.
  void CommitTick(Campaign& campaign);
  /// Runs CompactJournal once the watermark is crossed (warn on failure).
  void MaybeCompactJournal();

  sim::Simulator& simulator_;
  TrustedServer& server_;
  std::vector<std::unique_ptr<Campaign>> campaigns_;
  CampaignJournal* journal_ = nullptr;
  std::uint64_t journal_compact_after_bytes_ = 0;
  /// Weak-referenced by every scheduled tick: expires with the engine,
  /// so timers outliving a killed engine are inert instead of dangling.
  std::shared_ptr<const bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace dacm::server
