#include "server/package_cache.hpp"

#include <algorithm>

#include "pirte/package.hpp"
#include "pirte/protocol.hpp"

namespace dacm::server {
namespace {

std::uint64_t Fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string KeyOf(const std::string& model, const App& app) {
  std::string key;
  key.reserve(model.size() + app.name.size() + app.version.size() + 2);
  key += model;
  key += '\0';
  key += app.name;
  key += '\0';
  key += app.version;
  return key;
}

/// VIN-less kUninstallBatch envelope for the manifest's plug-ins.  The
/// downstream receive path (ECM and scripted endpoints alike) routes on
/// the socket, never on the envelope VIN, so one wire image serves the
/// whole fleet.
support::SharedBytes BuildUninstallWire(
    const std::string& app_name,
    const std::vector<BatchManifest::Plugin>& plugins) {
  std::vector<pirte::UninstallBatchEntry> entries;
  entries.reserve(plugins.size());
  for (const BatchManifest::Plugin& plugin : plugins) {
    entries.push_back({plugin.name, plugin.ecu_id});
  }
  pirte::PirteMessage batch;
  batch.type = pirte::MessageType::kUninstallBatch;
  batch.plugin_name = app_name;
  batch.payload = pirte::SerializeUninstallBatch(entries);
  return support::SharedBytes(pirte::SerializeEnveloped("", batch));
}

std::shared_ptr<const BatchPayload> BuildPayload(
    const App& app, const std::vector<GeneratedPackage>& generated) {
  auto payload = std::make_shared<BatchPayload>();
  payload->packages.reserve(generated.size());
  for (const GeneratedPackage& gen : generated) {
    payload->packages.push_back(gen.package.Serialize());
  }
  std::vector<pirte::InstallBatchEntry> entries;
  entries.reserve(generated.size());
  for (std::size_t i = 0; i < generated.size(); ++i) {
    entries.push_back(
        {generated[i].plugin, generated[i].ecu_id, payload->packages[i]});
  }
  pirte::PirteMessage batch;
  batch.type = pirte::MessageType::kInstallBatch;
  batch.plugin_name = app.name;
  batch.payload = pirte::SerializeInstallBatch(entries);
  payload->install_wire =
      support::SharedBytes(pirte::SerializeEnveloped("", batch));
  return payload;
}

std::shared_ptr<const BatchManifest> BuildManifest(
    const App& app, const std::vector<GeneratedPackage>& generated,
    const BatchPayload& payload) {
  auto manifest = std::make_shared<BatchManifest>();
  manifest->app_name = app.name;
  manifest->version = app.version;
  manifest->plugins.reserve(generated.size());
  for (const GeneratedPackage& gen : generated) {
    manifest->plugins.push_back({gen.plugin, gen.ecu_id, gen.package.pic});
  }
  manifest->uninstall_wire = BuildUninstallWire(app.name, manifest->plugins);
  manifest->content_hash = Fnv1a(payload.install_wire.span());
  return manifest;
}

}  // namespace

PackageCache::Layout PackageCache::Canonicalize(const UsedIdMap& used_ids) {
  Layout layout;
  layout.reserve(used_ids.size());
  for (const auto& [ecu, set] : used_ids) {
    if (set.size() == 0) continue;
    layout.emplace_back(ecu, set.words());
  }
  std::sort(layout.begin(), layout.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return layout;
}

support::Result<CachedBatch> PackageCache::Acquire(
    const std::string& model, const App& app, const SwConf& conf,
    const SystemSwConf& system_sw, const UsedIdMap& used_ids) {
  Layout layout = Canonicalize(used_ids);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[KeyOf(model, app)];
  for (Variant& variant : entry.variants) {
    if (variant.layout != layout) continue;
    if (auto payload = variant.payload.lock()) {
      return CachedBatch{variant.manifest, std::move(payload)};
    }
    // Payload expired (every in-flight row converged).  Generation is
    // deterministic in (app, confs, layout), so re-running it against the
    // matching layout reproduces the pinned manifest's bytes exactly.
    UsedIdMap scratch = used_ids;
    DACM_ASSIGN_OR_RETURN(std::vector<GeneratedPackage> generated,
                          GeneratePackages(app, conf, system_sw, scratch));
    std::shared_ptr<const BatchPayload> payload = BuildPayload(app, generated);
    variant.payload = payload;
    return CachedBatch{variant.manifest, std::move(payload)};
  }
  UsedIdMap scratch = used_ids;
  DACM_ASSIGN_OR_RETURN(std::vector<GeneratedPackage> generated,
                        GeneratePackages(app, conf, system_sw, scratch));
  std::shared_ptr<const BatchPayload> payload = BuildPayload(app, generated);
  std::shared_ptr<const BatchManifest> manifest =
      BuildManifest(app, generated, *payload);
  entry.variants.push_back({std::move(layout), manifest, payload});
  return CachedBatch{std::move(manifest), std::move(payload)};
}

std::size_t PackageCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t PackageCache::live_payloads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (const auto& [key, entry] : entries_) {
    for (const Variant& variant : entry.variants) {
      if (!variant.payload.expired()) ++live;
    }
  }
  return live;
}

std::shared_ptr<const BatchManifest> PackageCache::RecoveredManifest(
    const std::string& app_name, const std::string& version,
    std::span<const StatusParagraph::PluginIds> plugins) {
  auto manifest = std::make_shared<BatchManifest>();
  manifest->app_name = app_name;
  manifest->version = version;
  manifest->plugins.reserve(plugins.size());
  for (const StatusParagraph::PluginIds& ids : plugins) {
    BatchManifest::Plugin plugin;
    plugin.name = ids.plugin;
    plugin.ecu_id = ids.ecu_id;
    plugin.pic.entries.reserve(ids.unique_ids.size());
    for (std::uint8_t unique_id : ids.unique_ids) {
      pirte::PicEntry pic_entry;
      pic_entry.unique_id = unique_id;
      plugin.pic.entries.push_back(std::move(pic_entry));
    }
    manifest->plugins.push_back(std::move(plugin));
  }
  manifest->uninstall_wire = BuildUninstallWire(app_name, manifest->plugins);
  return manifest;
}

}  // namespace dacm::server
