#include "server/journal.hpp"

#include <bit>
#include <utility>

#include "support/bytes.hpp"
#include "support/log.hpp"

namespace dacm::server {
namespace {

enum class RecordType : std::uint8_t {
  kStart = 1,
  kRows = 2,
  kWave = 3,
  kFinish = 4,
  kForget = 5,
};

constexpr std::uint8_t kJournalVersion = 1;

void WritePolicy(support::ByteWriter& writer, const RetryPolicy& policy) {
  writer.WriteU64(policy.max_waves);
  writer.WriteU64(policy.settle_delay);
  writer.WriteU64(policy.initial_backoff);
  writer.WriteU64(std::bit_cast<std::uint64_t>(policy.backoff_multiplier));
  writer.WriteU64(policy.max_backoff);
  writer.WriteU64(std::bit_cast<std::uint64_t>(policy.abort_nack_fraction));
}

support::Status ReadPolicy(support::ByteReader& reader, RetryPolicy& policy) {
  DACM_ASSIGN_OR_RETURN(const std::uint64_t max_waves, reader.ReadU64());
  policy.max_waves = static_cast<std::size_t>(max_waves);
  DACM_ASSIGN_OR_RETURN(policy.settle_delay, reader.ReadU64());
  DACM_ASSIGN_OR_RETURN(policy.initial_backoff, reader.ReadU64());
  DACM_ASSIGN_OR_RETURN(const std::uint64_t multiplier, reader.ReadU64());
  policy.backoff_multiplier = std::bit_cast<double>(multiplier);
  DACM_ASSIGN_OR_RETURN(policy.max_backoff, reader.ReadU64());
  DACM_ASSIGN_OR_RETURN(const std::uint64_t abort_fraction, reader.ReadU64());
  policy.abort_nack_fraction = std::bit_cast<double>(abort_fraction);
  return support::OkStatus();
}

}  // namespace

support::Bytes CampaignJournal::EncodeStart(
    std::uint32_t id, CampaignKind kind, std::uint32_t user,
    std::string_view app_name, const RetryPolicy& policy,
    sim::SimTime started_at, std::span<const CampaignRow> rows) {
  support::ByteWriter writer;
  writer.WriteU8(kJournalVersion);
  writer.WriteU8(static_cast<std::uint8_t>(RecordType::kStart));
  writer.WriteU32(id);
  writer.WriteU8(static_cast<std::uint8_t>(kind));
  writer.WriteU32(user);
  writer.WriteString(app_name);
  WritePolicy(writer, policy);
  writer.WriteU64(started_at);
  writer.WriteVarU32(static_cast<std::uint32_t>(rows.size()));
  for (const CampaignRow& row : rows) writer.WriteString(row.vin);
  return writer.Take();
}

support::Bytes CampaignJournal::EncodeRows(
    std::uint32_t id, std::span<const JournalRowEntry> entries) {
  support::ByteWriter writer;
  writer.WriteU8(kJournalVersion);
  writer.WriteU8(static_cast<std::uint8_t>(RecordType::kRows));
  writer.WriteU32(id);
  writer.WriteVarU32(static_cast<std::uint32_t>(entries.size()));
  for (const JournalRowEntry& entry : entries) {
    writer.WriteVarU32(entry.index);
    writer.WriteU8(static_cast<std::uint8_t>(entry.state));
    writer.WriteVarU32(entry.attempts);
    writer.WriteU64(entry.done_at);
    writer.WriteU8(static_cast<std::uint8_t>(entry.error));
  }
  return writer.Take();
}

support::Bytes CampaignJournal::EncodeWave(std::uint32_t id,
                                           std::size_t waves_pushed,
                                           std::uint64_t total_pushes,
                                           sim::SimTime last_push_at,
                                           sim::SimTime next_tick_at) {
  support::ByteWriter writer;
  writer.WriteU8(kJournalVersion);
  writer.WriteU8(static_cast<std::uint8_t>(RecordType::kWave));
  writer.WriteU32(id);
  writer.WriteU64(waves_pushed);
  writer.WriteU64(total_pushes);
  writer.WriteU64(last_push_at);
  writer.WriteU64(next_tick_at);
  return writer.Take();
}

support::Bytes CampaignJournal::EncodeFinish(std::uint32_t id,
                                             CampaignStatus status,
                                             sim::SimTime finished_at) {
  support::ByteWriter writer;
  writer.WriteU8(kJournalVersion);
  writer.WriteU8(static_cast<std::uint8_t>(RecordType::kFinish));
  writer.WriteU32(id);
  writer.WriteU8(static_cast<std::uint8_t>(status));
  writer.WriteU64(finished_at);
  return writer.Take();
}

support::Bytes CampaignJournal::EncodeForget(std::uint32_t id) {
  support::ByteWriter writer;
  writer.WriteU8(kJournalVersion);
  writer.WriteU8(static_cast<std::uint8_t>(RecordType::kForget));
  writer.WriteU32(id);
  return writer.Take();
}

support::Status CampaignJournal::AppendStart(
    std::uint32_t id, CampaignKind kind, std::uint32_t user,
    std::string_view app_name, const RetryPolicy& policy,
    sim::SimTime started_at, std::span<const CampaignRow> rows) {
  return writer_.Append(
      EncodeStart(id, kind, user, app_name, policy, started_at, rows));
}

support::Status CampaignJournal::AppendRows(
    std::uint32_t id, std::span<const JournalRowEntry> entries) {
  return writer_.Append(EncodeRows(id, entries));
}

support::Status CampaignJournal::AppendWave(std::uint32_t id,
                                            std::size_t waves_pushed,
                                            std::uint64_t total_pushes,
                                            sim::SimTime last_push_at,
                                            sim::SimTime next_tick_at) {
  return writer_.Append(EncodeWave(id, waves_pushed, total_pushes,
                                   last_push_at, next_tick_at));
}

support::Status CampaignJournal::AppendFinish(std::uint32_t id,
                                              CampaignStatus status,
                                              sim::SimTime finished_at) {
  return writer_.Append(EncodeFinish(id, status, finished_at));
}

support::Status CampaignJournal::AppendForget(std::uint32_t id) {
  return writer_.Append(EncodeForget(id));
}

support::Status CampaignJournal::Rotate(std::span<const std::uint8_t> image) {
  DACM_RETURN_IF_ERROR(sink_.Rotate(image));
  writer_.ResetByteCount();
  return support::OkStatus();
}

support::Result<std::vector<RecoveredCampaign>> ReplayCampaignJournal(
    std::span<const std::uint8_t> data) {
  std::vector<RecoveredCampaign> campaigns;
  auto find = [&campaigns](std::uint32_t id) -> RecoveredCampaign* {
    if (id >= campaigns.size()) return nullptr;
    return &campaigns[id];
  };

  auto fold = [&](std::span<const std::uint8_t> payload) -> support::Status {
    support::ByteReader reader(payload);
    DACM_ASSIGN_OR_RETURN(const std::uint8_t version, reader.ReadU8());
    if (version != kJournalVersion) {
      return support::Corrupted("unknown journal record version");
    }
    DACM_ASSIGN_OR_RETURN(const std::uint8_t type, reader.ReadU8());
    DACM_ASSIGN_OR_RETURN(const std::uint32_t id, reader.ReadU32());
    switch (static_cast<RecordType>(type)) {
      case RecordType::kStart: {
        // Ids are engine slot indices, so starts arrive densely in order.
        if (id != campaigns.size()) {
          return support::Corrupted("journal start out of sequence");
        }
        RecoveredCampaign campaign;
        campaign.id = id;
        DACM_ASSIGN_OR_RETURN(const std::uint8_t kind, reader.ReadU8());
        if (kind > static_cast<std::uint8_t>(CampaignKind::kRollback)) {
          return support::Corrupted("journal campaign kind out of range");
        }
        campaign.kind = static_cast<CampaignKind>(kind);
        DACM_ASSIGN_OR_RETURN(campaign.user, reader.ReadU32());
        DACM_ASSIGN_OR_RETURN(campaign.app_name, reader.ReadString());
        DACM_RETURN_IF_ERROR(ReadPolicy(reader, campaign.policy));
        DACM_ASSIGN_OR_RETURN(campaign.started_at, reader.ReadU64());
        campaign.next_tick_at = campaign.started_at;
        DACM_ASSIGN_OR_RETURN(const std::uint32_t row_count,
                              reader.ReadVarU32());
        campaign.rows.reserve(row_count);
        for (std::uint32_t i = 0; i < row_count; ++i) {
          CampaignRow row;
          DACM_ASSIGN_OR_RETURN(row.vin, reader.ReadString());
          campaign.rows.push_back(std::move(row));
        }
        campaigns.push_back(std::move(campaign));
        break;
      }
      case RecordType::kRows: {
        RecoveredCampaign* campaign = find(id);
        if (campaign == nullptr) {
          return support::Corrupted("journal rows before start");
        }
        DACM_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadVarU32());
        for (std::uint32_t i = 0; i < count; ++i) {
          DACM_ASSIGN_OR_RETURN(const std::uint32_t index, reader.ReadVarU32());
          DACM_ASSIGN_OR_RETURN(const std::uint8_t state, reader.ReadU8());
          DACM_ASSIGN_OR_RETURN(const std::uint32_t attempts,
                                reader.ReadVarU32());
          DACM_ASSIGN_OR_RETURN(const std::uint64_t done_at, reader.ReadU64());
          DACM_ASSIGN_OR_RETURN(const std::uint8_t error, reader.ReadU8());
          if (index >= campaign->rows.size() ||
              state > static_cast<std::uint8_t>(CampaignRowState::kFailed) ||
              error > static_cast<std::uint8_t>(support::ErrorCode::kInternal)) {
            return support::Corrupted("journal row entry out of range");
          }
          CampaignRow& row = campaign->rows[index];
          row.state = static_cast<CampaignRowState>(state);
          row.attempts = attempts;
          row.done_at = done_at;
          row.error = static_cast<support::ErrorCode>(error);
        }
        break;
      }
      case RecordType::kWave: {
        RecoveredCampaign* campaign = find(id);
        if (campaign == nullptr) {
          return support::Corrupted("journal wave before start");
        }
        DACM_ASSIGN_OR_RETURN(const std::uint64_t waves, reader.ReadU64());
        campaign->waves_pushed = static_cast<std::size_t>(waves);
        DACM_ASSIGN_OR_RETURN(campaign->total_pushes, reader.ReadU64());
        DACM_ASSIGN_OR_RETURN(campaign->last_push_at, reader.ReadU64());
        DACM_ASSIGN_OR_RETURN(campaign->next_tick_at, reader.ReadU64());
        break;
      }
      case RecordType::kFinish: {
        RecoveredCampaign* campaign = find(id);
        if (campaign == nullptr) {
          return support::Corrupted("journal finish before start");
        }
        DACM_ASSIGN_OR_RETURN(const std::uint8_t status, reader.ReadU8());
        if (status > static_cast<std::uint8_t>(CampaignStatus::kExhausted)) {
          return support::Corrupted("journal campaign status out of range");
        }
        campaign->status = static_cast<CampaignStatus>(status);
        DACM_ASSIGN_OR_RETURN(campaign->finished_at, reader.ReadU64());
        break;
      }
      case RecordType::kForget: {
        RecoveredCampaign* campaign = find(id);
        if (campaign == nullptr) {
          // A compacted journal drops retired campaigns' kStart records
          // and keeps only the tombstone; materialize forgotten
          // placeholder slots so later ids keep their dense alignment.
          DACM_LOG_WARN("journal")
              << "forget tombstone for campaign " << id
              << " with no start record; materializing retired slot";
          while (campaigns.size() <= id) {
            RecoveredCampaign placeholder;
            placeholder.id = static_cast<std::uint32_t>(campaigns.size());
            placeholder.forgotten = true;
            campaigns.push_back(std::move(placeholder));
          }
          break;
        }
        campaign->forgotten = true;
        campaign->rows.clear();
        break;
      }
      default:
        return support::Corrupted("unknown journal record type");
    }
    if (!reader.exhausted()) {
      return support::Corrupted("trailing bytes in journal record");
    }
    return support::OkStatus();
  };

  DACM_RETURN_IF_ERROR(support::ReplayRecords(data, fold).status());
  return campaigns;
}

}  // namespace dacm::server
