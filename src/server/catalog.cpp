#include "server/catalog.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace dacm::server {
namespace {

constexpr std::uint8_t kImageVersion = 1;

std::uint64_t ContentHash(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 1099511628211ull;
  }
  return hash;
}

// --- model body --------------------------------------------------------------------

void EncodeModelBody(support::ByteWriter& writer, const VehicleModelConf& conf) {
  writer.WriteString(conf.model);
  writer.WriteVarU32(static_cast<std::uint32_t>(conf.hw.ecus.size()));
  for (const EcuInfo& ecu : conf.hw.ecus) {
    writer.WriteU32(ecu.ecu_id);
    writer.WriteString(ecu.name);
    writer.WriteU8(ecu.has_plugin_swc ? 1 : 0);
    writer.WriteU8(ecu.is_ecm ? 1 : 0);
    writer.WriteU64(ecu.max_plugins);
    writer.WriteU64(ecu.max_binary_size);
  }
  writer.WriteString(conf.sw.platform_version);
  writer.WriteVarU32(static_cast<std::uint32_t>(conf.sw.virtual_ports.size()));
  for (const VirtualPortDesc& vp : conf.sw.virtual_ports) {
    writer.WriteU8(vp.id);
    writer.WriteString(vp.name);
    writer.WriteU8(vp.kind);
    writer.WriteU8(static_cast<std::uint8_t>(vp.flow));
    writer.WriteU32(vp.ecu_id);
    writer.WriteU32(vp.peer_ecu);
  }
}

support::Result<VehicleModelConf> DecodeModelBody(support::ByteReader& reader) {
  VehicleModelConf conf;
  DACM_ASSIGN_OR_RETURN(conf.model, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(const std::uint32_t ecu_count, reader.ReadVarU32());
  conf.hw.ecus.reserve(ecu_count);
  for (std::uint32_t i = 0; i < ecu_count; ++i) {
    EcuInfo ecu;
    DACM_ASSIGN_OR_RETURN(ecu.ecu_id, reader.ReadU32());
    DACM_ASSIGN_OR_RETURN(ecu.name, reader.ReadString());
    DACM_ASSIGN_OR_RETURN(const std::uint8_t swc, reader.ReadU8());
    DACM_ASSIGN_OR_RETURN(const std::uint8_t ecm, reader.ReadU8());
    ecu.has_plugin_swc = swc != 0;
    ecu.is_ecm = ecm != 0;
    DACM_ASSIGN_OR_RETURN(const std::uint64_t max_plugins, reader.ReadU64());
    DACM_ASSIGN_OR_RETURN(const std::uint64_t max_binary, reader.ReadU64());
    ecu.max_plugins = static_cast<std::size_t>(max_plugins);
    ecu.max_binary_size = static_cast<std::size_t>(max_binary);
    conf.hw.ecus.push_back(std::move(ecu));
  }
  DACM_ASSIGN_OR_RETURN(conf.sw.platform_version, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(const std::uint32_t vp_count, reader.ReadVarU32());
  conf.sw.virtual_ports.reserve(vp_count);
  for (std::uint32_t i = 0; i < vp_count; ++i) {
    VirtualPortDesc vp;
    DACM_ASSIGN_OR_RETURN(vp.id, reader.ReadU8());
    DACM_ASSIGN_OR_RETURN(vp.name, reader.ReadString());
    DACM_ASSIGN_OR_RETURN(vp.kind, reader.ReadU8());
    DACM_ASSIGN_OR_RETURN(const std::uint8_t flow, reader.ReadU8());
    if (flow > static_cast<std::uint8_t>(VirtualPortFlow::kBidirectional)) {
      return support::Corrupted("catalog virtual-port flow out of range");
    }
    vp.flow = static_cast<VirtualPortFlow>(flow);
    DACM_ASSIGN_OR_RETURN(vp.ecu_id, reader.ReadU32());
    DACM_ASSIGN_OR_RETURN(vp.peer_ecu, reader.ReadU32());
    conf.sw.virtual_ports.push_back(std::move(vp));
  }
  return conf;
}

// --- app body ----------------------------------------------------------------------

// `pool` == nullptr inlines plug-in binaries (incremental kApp record);
// non-null writes a VarU32 pool index instead (kImage encoding).
void EncodeAppBody(support::ByteWriter& writer, const App& app,
                   const std::unordered_map<const PluginDecl*,
                                            std::uint32_t>* pool) {
  writer.WriteString(app.name);
  writer.WriteString(app.version);
  writer.WriteString(app.developer);
  writer.WriteVarU32(static_cast<std::uint32_t>(app.plugins.size()));
  for (const PluginDecl& plugin : app.plugins) {
    writer.WriteString(plugin.name);
    if (pool == nullptr) {
      writer.WriteBlob(plugin.binary);
    } else {
      writer.WriteVarU32(pool->at(&plugin));
    }
    writer.WriteVarU32(static_cast<std::uint32_t>(plugin.ports.size()));
    for (const PluginPortDecl& port : plugin.ports) {
      writer.WriteU8(port.local_index);
      writer.WriteString(port.name);
      writer.WriteU8(static_cast<std::uint8_t>(port.direction));
    }
  }
  writer.WriteVarU32(static_cast<std::uint32_t>(app.confs.size()));
  for (const SwConf& conf : app.confs) {
    writer.WriteString(conf.vehicle_model);
    writer.WriteString(conf.min_platform);
    writer.WriteVarU32(static_cast<std::uint32_t>(conf.placements.size()));
    for (const PlacementDecl& placement : conf.placements) {
      writer.WriteString(placement.plugin);
      writer.WriteU32(placement.ecu_id);
    }
    writer.WriteVarU32(static_cast<std::uint32_t>(conf.connections.size()));
    for (const ConnectionDecl& connection : conf.connections) {
      writer.WriteString(connection.plugin);
      writer.WriteU8(connection.local_port);
      writer.WriteU8(static_cast<std::uint8_t>(connection.target));
      writer.WriteString(connection.virtual_port_name);
      writer.WriteString(connection.peer_plugin);
      writer.WriteU8(connection.peer_port);
      writer.WriteString(connection.endpoint);
      writer.WriteString(connection.message_id);
    }
    writer.WriteVarU32(
        static_cast<std::uint32_t>(conf.required_virtual_ports.size()));
    for (const std::string& vp : conf.required_virtual_ports) {
      writer.WriteString(vp);
    }
  }
  writer.WriteVarU32(static_cast<std::uint32_t>(app.depends_on.size()));
  for (const std::string& dep : app.depends_on) writer.WriteString(dep);
  writer.WriteVarU32(static_cast<std::uint32_t>(app.conflicts_with.size()));
  for (const std::string& conflict : app.conflicts_with) {
    writer.WriteString(conflict);
  }
}

// `pool` == nullptr reads inline binaries; non-null resolves pool indices.
support::Result<App> DecodeAppBody(support::ByteReader& reader,
                                   const std::vector<support::Bytes>* pool) {
  App app;
  DACM_ASSIGN_OR_RETURN(app.name, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(app.version, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(app.developer, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(const std::uint32_t plugin_count, reader.ReadVarU32());
  app.plugins.reserve(plugin_count);
  for (std::uint32_t i = 0; i < plugin_count; ++i) {
    PluginDecl plugin;
    DACM_ASSIGN_OR_RETURN(plugin.name, reader.ReadString());
    if (pool == nullptr) {
      DACM_ASSIGN_OR_RETURN(plugin.binary, reader.ReadBlob());
    } else {
      DACM_ASSIGN_OR_RETURN(const std::uint32_t blob, reader.ReadVarU32());
      if (blob >= pool->size()) {
        return support::Corrupted("catalog blob-pool index out of range");
      }
      plugin.binary = (*pool)[blob];
    }
    DACM_ASSIGN_OR_RETURN(const std::uint32_t port_count, reader.ReadVarU32());
    plugin.ports.reserve(port_count);
    for (std::uint32_t j = 0; j < port_count; ++j) {
      PluginPortDecl port;
      DACM_ASSIGN_OR_RETURN(port.local_index, reader.ReadU8());
      DACM_ASSIGN_OR_RETURN(port.name, reader.ReadString());
      DACM_ASSIGN_OR_RETURN(const std::uint8_t direction, reader.ReadU8());
      if (direction >
          static_cast<std::uint8_t>(pirte::PluginPortDirection::kProvided)) {
        return support::Corrupted("catalog port direction out of range");
      }
      port.direction = static_cast<pirte::PluginPortDirection>(direction);
      plugin.ports.push_back(std::move(port));
    }
    app.plugins.push_back(std::move(plugin));
  }
  DACM_ASSIGN_OR_RETURN(const std::uint32_t conf_count, reader.ReadVarU32());
  app.confs.reserve(conf_count);
  for (std::uint32_t i = 0; i < conf_count; ++i) {
    SwConf conf;
    DACM_ASSIGN_OR_RETURN(conf.vehicle_model, reader.ReadString());
    DACM_ASSIGN_OR_RETURN(conf.min_platform, reader.ReadString());
    DACM_ASSIGN_OR_RETURN(const std::uint32_t placement_count,
                          reader.ReadVarU32());
    conf.placements.reserve(placement_count);
    for (std::uint32_t j = 0; j < placement_count; ++j) {
      PlacementDecl placement;
      DACM_ASSIGN_OR_RETURN(placement.plugin, reader.ReadString());
      DACM_ASSIGN_OR_RETURN(placement.ecu_id, reader.ReadU32());
      conf.placements.push_back(std::move(placement));
    }
    DACM_ASSIGN_OR_RETURN(const std::uint32_t connection_count,
                          reader.ReadVarU32());
    conf.connections.reserve(connection_count);
    for (std::uint32_t j = 0; j < connection_count; ++j) {
      ConnectionDecl connection;
      DACM_ASSIGN_OR_RETURN(connection.plugin, reader.ReadString());
      DACM_ASSIGN_OR_RETURN(connection.local_port, reader.ReadU8());
      DACM_ASSIGN_OR_RETURN(const std::uint8_t target, reader.ReadU8());
      if (target >
          static_cast<std::uint8_t>(ConnectionDecl::Target::kExternalOut)) {
        return support::Corrupted("catalog connection target out of range");
      }
      connection.target = static_cast<ConnectionDecl::Target>(target);
      DACM_ASSIGN_OR_RETURN(connection.virtual_port_name, reader.ReadString());
      DACM_ASSIGN_OR_RETURN(connection.peer_plugin, reader.ReadString());
      DACM_ASSIGN_OR_RETURN(connection.peer_port, reader.ReadU8());
      DACM_ASSIGN_OR_RETURN(connection.endpoint, reader.ReadString());
      DACM_ASSIGN_OR_RETURN(connection.message_id, reader.ReadString());
      conf.connections.push_back(std::move(connection));
    }
    DACM_ASSIGN_OR_RETURN(const std::uint32_t required_count,
                          reader.ReadVarU32());
    conf.required_virtual_ports.reserve(required_count);
    for (std::uint32_t j = 0; j < required_count; ++j) {
      DACM_ASSIGN_OR_RETURN(std::string vp, reader.ReadString());
      conf.required_virtual_ports.push_back(std::move(vp));
    }
    app.confs.push_back(std::move(conf));
  }
  DACM_ASSIGN_OR_RETURN(const std::uint32_t dep_count, reader.ReadVarU32());
  app.depends_on.reserve(dep_count);
  for (std::uint32_t i = 0; i < dep_count; ++i) {
    DACM_ASSIGN_OR_RETURN(std::string dep, reader.ReadString());
    app.depends_on.push_back(std::move(dep));
  }
  DACM_ASSIGN_OR_RETURN(const std::uint32_t conflict_count,
                        reader.ReadVarU32());
  app.conflicts_with.reserve(conflict_count);
  for (std::uint32_t i = 0; i < conflict_count; ++i) {
    DACM_ASSIGN_OR_RETURN(std::string conflict, reader.ReadString());
    app.conflicts_with.push_back(std::move(conflict));
  }
  return app;
}

// --- image-level upserts -----------------------------------------------------------

support::Status UpsertUser(CatalogImage& image, std::uint32_t index,
                           std::string name) {
  if (index < image.users.size()) {
    if (image.users[index].name != name) {
      return support::Corrupted("catalog user index re-used with new name");
    }
    return support::OkStatus();
  }
  if (index != image.users.size()) {
    return support::Corrupted("catalog user index out of sequence");
  }
  User user;
  user.name = std::move(name);
  image.users.push_back(std::move(user));
  return support::OkStatus();
}

void UpsertModel(CatalogImage& image, VehicleModelConf conf) {
  for (VehicleModelConf& existing : image.models) {
    if (existing.model == conf.model) {
      existing = std::move(conf);
      return;
    }
  }
  image.models.push_back(std::move(conf));
}

void UpsertApp(CatalogImage& image, App app) {
  for (App& existing : image.apps) {
    if (existing.name == app.name) {
      existing = std::move(app);
      return;
    }
  }
  image.apps.push_back(std::move(app));
}

void UpsertBinding(CatalogImage& image, CatalogBinding binding) {
  for (CatalogBinding& existing : image.bindings) {
    if (existing.vin == binding.vin) {
      existing = std::move(binding);
      return;
    }
  }
  image.bindings.push_back(std::move(binding));
}

}  // namespace

bool IsCatalogRecord(std::span<const std::uint8_t> payload) {
  return !payload.empty() &&
         payload[0] >= static_cast<std::uint8_t>(CatalogRecordKind::kUser) &&
         payload[0] <= static_cast<std::uint8_t>(CatalogRecordKind::kImage);
}

support::Bytes EncodeCatalogUser(std::uint32_t index, const std::string& name) {
  support::ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(CatalogRecordKind::kUser));
  writer.WriteU32(index);
  writer.WriteString(name);
  return std::move(writer).Take();
}

support::Bytes EncodeCatalogModel(const VehicleModelConf& conf) {
  support::ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(CatalogRecordKind::kModel));
  EncodeModelBody(writer, conf);
  return std::move(writer).Take();
}

support::Bytes EncodeCatalogApp(const App& app) {
  support::ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(CatalogRecordKind::kApp));
  EncodeAppBody(writer, app, /*pool=*/nullptr);
  return std::move(writer).Take();
}

support::Bytes EncodeCatalogBinding(const std::string& vin,
                                    const std::string& model,
                                    std::uint32_t owner) {
  support::ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(CatalogRecordKind::kBinding));
  writer.WriteString(vin);
  writer.WriteString(model);
  writer.WriteU32(owner);
  return std::move(writer).Take();
}

support::Bytes EncodeCatalogImage(const CatalogImage& image) {
  // Dedup plug-in binaries into a content-hashed pool: hash buckets hold
  // pool indices, byte-equality breaks (theoretical) collisions.
  std::vector<std::span<const std::uint8_t>> pool;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  std::unordered_map<const PluginDecl*, std::uint32_t> refs;
  for (const App& app : image.apps) {
    for (const PluginDecl& plugin : app.plugins) {
      const std::uint64_t hash = ContentHash(plugin.binary);
      std::vector<std::uint32_t>& bucket = buckets[hash];
      std::uint32_t index = 0;
      bool found = false;
      for (const std::uint32_t candidate : bucket) {
        const auto& existing = pool[candidate];
        if (existing.size() == plugin.binary.size() &&
            std::equal(existing.begin(), existing.end(),
                       plugin.binary.begin())) {
          index = candidate;
          found = true;
          break;
        }
      }
      if (!found) {
        index = static_cast<std::uint32_t>(pool.size());
        pool.emplace_back(plugin.binary);
        bucket.push_back(index);
      }
      refs[&plugin] = index;
    }
  }

  support::ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(CatalogRecordKind::kImage));
  writer.WriteU8(kImageVersion);
  writer.WriteVarU32(static_cast<std::uint32_t>(pool.size()));
  for (const auto& blob : pool) writer.WriteBlob(blob);
  writer.WriteVarU32(static_cast<std::uint32_t>(image.users.size()));
  for (const User& user : image.users) writer.WriteString(user.name);
  writer.WriteVarU32(static_cast<std::uint32_t>(image.models.size()));
  for (const VehicleModelConf& conf : image.models) {
    EncodeModelBody(writer, conf);
  }
  writer.WriteVarU32(static_cast<std::uint32_t>(image.apps.size()));
  for (const App& app : image.apps) EncodeAppBody(writer, app, &refs);
  writer.WriteVarU32(static_cast<std::uint32_t>(image.bindings.size()));
  for (const CatalogBinding& binding : image.bindings) {
    writer.WriteString(binding.vin);
    writer.WriteString(binding.model);
    writer.WriteU32(binding.owner);
  }
  return std::move(writer).Take();
}

support::Status ApplyCatalogRecord(std::span<const std::uint8_t> payload,
                                   CatalogImage& image) {
  if (!IsCatalogRecord(payload)) {
    return support::InvalidArgument("not a catalog record");
  }
  support::ByteReader reader(payload);
  DACM_ASSIGN_OR_RETURN(const std::uint8_t kind, reader.ReadU8());
  switch (static_cast<CatalogRecordKind>(kind)) {
    case CatalogRecordKind::kUser: {
      DACM_ASSIGN_OR_RETURN(const std::uint32_t index, reader.ReadU32());
      DACM_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
      if (!reader.exhausted()) {
        return support::Corrupted("trailing bytes in catalog user record");
      }
      return UpsertUser(image, index, std::move(name));
    }
    case CatalogRecordKind::kModel: {
      DACM_ASSIGN_OR_RETURN(VehicleModelConf conf, DecodeModelBody(reader));
      if (!reader.exhausted()) {
        return support::Corrupted("trailing bytes in catalog model record");
      }
      UpsertModel(image, std::move(conf));
      return support::OkStatus();
    }
    case CatalogRecordKind::kApp: {
      DACM_ASSIGN_OR_RETURN(App app, DecodeAppBody(reader, /*pool=*/nullptr));
      if (!reader.exhausted()) {
        return support::Corrupted("trailing bytes in catalog app record");
      }
      UpsertApp(image, std::move(app));
      return support::OkStatus();
    }
    case CatalogRecordKind::kBinding: {
      CatalogBinding binding;
      DACM_ASSIGN_OR_RETURN(binding.vin, reader.ReadString());
      DACM_ASSIGN_OR_RETURN(binding.model, reader.ReadString());
      DACM_ASSIGN_OR_RETURN(binding.owner, reader.ReadU32());
      if (!reader.exhausted()) {
        return support::Corrupted("trailing bytes in catalog binding record");
      }
      UpsertBinding(image, std::move(binding));
      return support::OkStatus();
    }
    case CatalogRecordKind::kImage: {
      DACM_ASSIGN_OR_RETURN(const std::uint8_t version, reader.ReadU8());
      if (version != kImageVersion) {
        return support::Corrupted("unknown catalog image version");
      }
      CatalogImage fresh;
      DACM_ASSIGN_OR_RETURN(const std::uint32_t pool_count, reader.ReadVarU32());
      std::vector<support::Bytes> pool;
      pool.reserve(pool_count);
      for (std::uint32_t i = 0; i < pool_count; ++i) {
        DACM_ASSIGN_OR_RETURN(support::Bytes blob, reader.ReadBlob());
        pool.push_back(std::move(blob));
      }
      DACM_ASSIGN_OR_RETURN(const std::uint32_t user_count, reader.ReadVarU32());
      fresh.users.reserve(user_count);
      for (std::uint32_t i = 0; i < user_count; ++i) {
        User user;
        DACM_ASSIGN_OR_RETURN(user.name, reader.ReadString());
        fresh.users.push_back(std::move(user));
      }
      DACM_ASSIGN_OR_RETURN(const std::uint32_t model_count,
                            reader.ReadVarU32());
      fresh.models.reserve(model_count);
      for (std::uint32_t i = 0; i < model_count; ++i) {
        DACM_ASSIGN_OR_RETURN(VehicleModelConf conf, DecodeModelBody(reader));
        fresh.models.push_back(std::move(conf));
      }
      DACM_ASSIGN_OR_RETURN(const std::uint32_t app_count, reader.ReadVarU32());
      fresh.apps.reserve(app_count);
      for (std::uint32_t i = 0; i < app_count; ++i) {
        DACM_ASSIGN_OR_RETURN(App app, DecodeAppBody(reader, &pool));
        fresh.apps.push_back(std::move(app));
      }
      DACM_ASSIGN_OR_RETURN(const std::uint32_t binding_count,
                            reader.ReadVarU32());
      fresh.bindings.reserve(binding_count);
      for (std::uint32_t i = 0; i < binding_count; ++i) {
        CatalogBinding binding;
        DACM_ASSIGN_OR_RETURN(binding.vin, reader.ReadString());
        DACM_ASSIGN_OR_RETURN(binding.model, reader.ReadString());
        DACM_ASSIGN_OR_RETURN(binding.owner, reader.ReadU32());
        fresh.bindings.push_back(std::move(binding));
      }
      if (!reader.exhausted()) {
        return support::Corrupted("trailing bytes in catalog image record");
      }
      image = std::move(fresh);
      return support::OkStatus();
    }
  }
  return support::Corrupted("unknown catalog record kind");
}

}  // namespace dacm::server
