#include "os/os.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace dacm::os {

Os::Os(sim::Simulator& simulator, std::string name)
    : simulator_(simulator), name_(std::move(name)) {}

support::Result<TaskId> Os::CreateTask(TaskConfig config) {
  if (started_) {
    return support::FailedPrecondition("task creation after StartOs: " + config.name);
  }
  if (!config.body) {
    return support::InvalidArgument("task body missing: " + config.name);
  }
  if (config.max_activations == 0) {
    return support::InvalidArgument("max_activations must be >= 1: " + config.name);
  }
  for (const Task& t : tasks_) {
    if (t.config.name == config.name) {
      return support::AlreadyExists("task name: " + config.name);
    }
  }
  tasks_.push_back(Task{std::move(config), 0, 0, 0});
  return TaskId(static_cast<std::uint32_t>(tasks_.size() - 1));
}

support::Result<ResourceId> Os::CreateResource(std::string name, std::uint8_t ceiling) {
  if (started_) {
    return support::FailedPrecondition("resource creation after StartOs: " + name);
  }
  resources_.push_back(Resource{std::move(name), ceiling, false});
  return ResourceId(static_cast<std::uint32_t>(resources_.size() - 1));
}

support::Result<AlarmId> Os::CreateTaskAlarm(std::string name, TaskId task,
                                             sim::SimTime offset, sim::SimTime period) {
  if (started_) return support::FailedPrecondition("alarm creation after StartOs");
  if (task.value() >= tasks_.size()) return support::NotFound("alarm target task");
  Alarm alarm;
  alarm.name = std::move(name);
  alarm.action = AlarmAction::kActivateTask;
  alarm.task = task;
  alarm.period = period;
  alarms_.push_back(std::move(alarm));
  // Initial offset is armed at StartOs; remember it via a one-time arm using
  // SetRelAlarm semantics after start.  Store offset in generation-0 arm.
  pending_arms_.push_back({alarms_.size() - 1, offset});
  return AlarmId(static_cast<std::uint32_t>(alarms_.size() - 1));
}

support::Result<AlarmId> Os::CreateEventAlarm(std::string name, TaskId task,
                                              EventMask events, sim::SimTime offset,
                                              sim::SimTime period) {
  if (started_) return support::FailedPrecondition("alarm creation after StartOs");
  if (task.value() >= tasks_.size()) return support::NotFound("alarm target task");
  if (tasks_[task.value()].config.kind != TaskKind::kExtended) {
    return support::InvalidArgument("event alarm target must be an extended task");
  }
  Alarm alarm;
  alarm.name = std::move(name);
  alarm.action = AlarmAction::kSetEvent;
  alarm.task = task;
  alarm.events = events;
  alarm.period = period;
  alarms_.push_back(std::move(alarm));
  pending_arms_.push_back({alarms_.size() - 1, offset});
  return AlarmId(static_cast<std::uint32_t>(alarms_.size() - 1));
}

support::Result<AlarmId> Os::CreateCallbackAlarm(std::string name,
                                                 std::function<void()> fn,
                                                 sim::SimTime offset,
                                                 sim::SimTime period) {
  if (started_) return support::FailedPrecondition("alarm creation after StartOs");
  if (!fn) return support::InvalidArgument("alarm callback missing");
  Alarm alarm;
  alarm.name = std::move(name);
  alarm.action = AlarmAction::kCallback;
  alarm.callback = std::move(fn);
  alarm.period = period;
  alarms_.push_back(std::move(alarm));
  pending_arms_.push_back({alarms_.size() - 1, offset});
  return AlarmId(static_cast<std::uint32_t>(alarms_.size() - 1));
}

support::Result<AlarmId> Os::CreateStoppedCallbackAlarm(std::string name,
                                                        std::function<void()> fn) {
  if (started_) return support::FailedPrecondition("alarm creation after StartOs");
  if (!fn) return support::InvalidArgument("alarm callback missing");
  Alarm alarm;
  alarm.name = std::move(name);
  alarm.action = AlarmAction::kCallback;
  alarm.callback = std::move(fn);
  alarms_.push_back(std::move(alarm));
  return AlarmId(static_cast<std::uint32_t>(alarms_.size() - 1));
}

support::Status Os::StartOs() {
  if (started_) return support::FailedPrecondition("StartOs called twice");
  started_ = true;
  for (const auto& [index, offset] : pending_arms_) {
    ArmAlarm(index, offset);
  }
  pending_arms_.clear();
  DACM_LOG_INFO("os") << name_ << ": started with " << tasks_.size() << " tasks, "
                      << alarms_.size() << " alarms";
  return support::OkStatus();
}

support::Status Os::ActivateTask(TaskId task) {
  if (!started_) return support::FailedPrecondition("ActivateTask before StartOs");
  if (task.value() >= tasks_.size()) return support::NotFound("unknown task");
  Task& t = tasks_[task.value()];
  if (t.pending >= t.config.max_activations) {
    auto status = support::ResourceExhausted("E_OS_LIMIT: " + t.config.name);
    ReportError(status);
    return status;
  }
  ++t.pending;
  ScheduleDispatch();
  return support::OkStatus();
}

support::Status Os::SetEvent(TaskId task, EventMask events) {
  if (!started_) return support::FailedPrecondition("SetEvent before StartOs");
  if (task.value() >= tasks_.size()) return support::NotFound("unknown task");
  Task& t = tasks_[task.value()];
  if (t.config.kind != TaskKind::kExtended) {
    auto status = support::InvalidArgument("SetEvent on basic task: " + t.config.name);
    ReportError(status);
    return status;
  }
  t.pending_events |= events;
  if (t.pending == 0) t.pending = 1;
  ScheduleDispatch();
  return support::OkStatus();
}

support::Status Os::CancelAlarm(AlarmId alarm) {
  if (alarm.value() >= alarms_.size()) return support::NotFound("unknown alarm");
  Alarm& a = alarms_[alarm.value()];
  if (!a.armed) return support::FailedPrecondition("alarm not armed: " + a.name);
  a.armed = false;
  ++a.generation;
  return support::OkStatus();
}

support::Status Os::SetRelAlarm(AlarmId alarm, sim::SimTime offset, sim::SimTime period) {
  if (alarm.value() >= alarms_.size()) return support::NotFound("unknown alarm");
  Alarm& a = alarms_[alarm.value()];
  if (a.armed) return support::FailedPrecondition("alarm already armed: " + a.name);
  a.period = period;
  ArmAlarm(alarm.value(), offset);
  return support::OkStatus();
}

support::Status Os::GetResource(ResourceId resource) {
  if (resource.value() >= resources_.size()) return support::NotFound("unknown resource");
  Resource& r = resources_[resource.value()];
  if (r.held) {
    auto status = support::FailedPrecondition("resource already held: " + r.name);
    ReportError(status);
    return status;
  }
  r.held = true;
  resource_stack_.push_back(resource);
  return support::OkStatus();
}

support::Status Os::ReleaseResource(ResourceId resource) {
  if (resource.value() >= resources_.size()) return support::NotFound("unknown resource");
  Resource& r = resources_[resource.value()];
  if (resource_stack_.empty() || resource_stack_.back() != resource) {
    auto status =
        support::FailedPrecondition("non-LIFO resource release: " + r.name);
    ReportError(status);
    return status;
  }
  r.held = false;
  resource_stack_.pop_back();
  return support::OkStatus();
}

std::uint64_t Os::task_activations(TaskId task) const {
  if (task.value() >= tasks_.size()) return 0;
  return tasks_[task.value()].completed;
}

support::Result<TaskId> Os::FindTask(const std::string& name) const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].config.name == name) return TaskId(static_cast<std::uint32_t>(i));
  }
  return support::NotFound("task: " + name);
}

void Os::ArmAlarm(std::size_t index, sim::SimTime offset) {
  Alarm& a = alarms_[index];
  a.armed = true;
  const std::uint64_t generation = ++a.generation;
  simulator_.ScheduleAfter(offset, [this, index, generation]() {
    AlarmExpired(index, generation);
  });
}

void Os::AlarmExpired(std::size_t index, std::uint64_t generation) {
  Alarm& a = alarms_[index];
  if (!a.armed || a.generation != generation) return;  // cancelled/re-armed
  switch (a.action) {
    case AlarmAction::kActivateTask:
      (void)ActivateTask(a.task);  // E_OS_LIMIT reported via the error hook
      break;
    case AlarmAction::kSetEvent:
      (void)SetEvent(a.task, a.events);
      break;
    case AlarmAction::kCallback:
      a.callback();
      break;
  }
  if (a.period > 0) {
    simulator_.ScheduleAfter(a.period, [this, index, generation]() {
      AlarmExpired(index, generation);
    });
  } else {
    a.armed = false;
  }
}

void Os::ScheduleDispatch() {
  if (cpu_busy_ || dispatch_scheduled_) return;
  dispatch_scheduled_ = true;
  simulator_.ScheduleAfter(0, [this]() {
    dispatch_scheduled_ = false;
    Dispatch();
  });
}

void Os::Dispatch() {
  if (cpu_busy_) return;
  // Highest priority pending task wins; ties resolve by creation order,
  // mirroring OSEK's deterministic task-id ordering.
  Task* best = nullptr;
  for (Task& t : tasks_) {
    if (t.pending == 0) continue;
    if (best == nullptr || t.config.priority > best->config.priority) best = &t;
  }
  if (best == nullptr) return;

  --best->pending;
  EventMask events = best->pending_events;
  best->pending_events = 0;

  cpu_busy_ = true;
  best->config.body(events);
  ++best->completed;
  ++activations_completed_;
  simulator_.ScheduleAfter(best->config.execution_time, [this]() {
    cpu_busy_ = false;
    Dispatch();
  });
}

void Os::ReportError(support::Status status) {
  DACM_LOG_WARN("os") << name_ << ": " << status.ToString();
  if (error_hook_) error_hook_(status);
}

}  // namespace dacm::os
