// OSEK/VDX-flavoured operating system kernel (simulated).
//
// AUTOSAR's OS layer descends from OSEK OS; this module reproduces the
// subset the upper layers rely on, executed on the discrete-event
// simulator:
//
//  * statically created BASIC and EXTENDED tasks with fixed priorities,
//    run-to-completion activations and bounded pending-activation counts;
//  * a priority-ordered ready queue; one CPU per Os instance: while a task
//    activation "executes" (its declared execution time elapses) no other
//    task on the same ECU dispatches — this is what lets benchmarks show
//    that a fuel-bounded plug-in VM task cannot starve built-in tasks;
//  * counters and alarms (one-shot and periodic) that activate tasks, set
//    events, or run callbacks;
//  * OSEK events for extended tasks, delivered as an event mask to the
//    task body;
//  * resources with priority-ceiling bookkeeping (validated nesting);
//  * startup/error hooks.
//
// Dynamic task creation after StartOs() is rejected: configuration is
// design-time-static, exactly the property the paper's dynamic layer must
// work around.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "support/ids.hpp"
#include "support/status.hpp"

namespace dacm::os {

struct TaskTag {};
struct AlarmTag {};
struct ResourceTag {};
using TaskId = support::StrongId<TaskTag>;
using AlarmId = support::StrongId<AlarmTag>;
using ResourceId = support::StrongId<ResourceTag>;

/// Bit mask of OSEK events.
using EventMask = std::uint32_t;

enum class TaskKind { kBasic, kExtended };

/// A task body receives the event mask that triggered it (0 for plain
/// activations) and runs to completion.
using TaskBody = std::function<void(EventMask)>;

/// Static configuration of one task.
struct TaskConfig {
  std::string name;
  TaskKind kind = TaskKind::kBasic;
  std::uint8_t priority = 0;  // higher number = higher priority
  std::uint8_t max_activations = 1;
  /// Simulated CPU time one activation occupies; the dispatcher will not
  /// start another task on this ECU before it elapses.
  sim::SimTime execution_time = 10 * sim::kMicrosecond;
  TaskBody body;
};

enum class AlarmAction { kActivateTask, kSetEvent, kCallback };

class Os {
 public:
  /// `name` identifies the ECU in logs.
  Os(sim::Simulator& simulator, std::string name);

  Os(const Os&) = delete;
  Os& operator=(const Os&) = delete;

  // --- configuration phase -------------------------------------------------

  /// Declares a task.  Only allowed before StartOs().
  support::Result<TaskId> CreateTask(TaskConfig config);

  /// Declares a resource with the given ceiling priority.
  support::Result<ResourceId> CreateResource(std::string name, std::uint8_t ceiling);

  /// Declares an alarm that activates `task` with period/offset; a period of
  /// 0 makes the alarm one-shot.
  support::Result<AlarmId> CreateTaskAlarm(std::string name, TaskId task,
                                           sim::SimTime offset, sim::SimTime period);

  /// Declares an alarm that sets `events` on `task`.
  support::Result<AlarmId> CreateEventAlarm(std::string name, TaskId task,
                                            EventMask events, sim::SimTime offset,
                                            sim::SimTime period);

  /// Declares an alarm that invokes `fn` (stands in for alarm callbacks).
  support::Result<AlarmId> CreateCallbackAlarm(std::string name, std::function<void()> fn,
                                               sim::SimTime offset, sim::SimTime period);

  /// Declares a callback alarm in the stopped state; arm it later with
  /// SetRelAlarm.  Lets subsystems with intermittent periodic work (e.g. the
  /// PIRTE step scheduler) leave the event queue empty while idle.
  support::Result<AlarmId> CreateStoppedCallbackAlarm(std::string name,
                                                      std::function<void()> fn);

  /// Ends the configuration phase and arms the alarms.
  support::Status StartOs();

  // --- runtime services (OSEK-style) ---------------------------------------

  /// Queues one activation of `task`.  Fails with kResourceExhausted when
  /// the task already has max_activations pending (OSEK E_OS_LIMIT).
  support::Status ActivateTask(TaskId task);

  /// Sets events on an extended task, activating it if idle.
  support::Status SetEvent(TaskId task, EventMask events);

  /// Cancels an armed alarm.
  support::Status CancelAlarm(AlarmId alarm);

  /// Re-arms an alarm relative to now.
  support::Status SetRelAlarm(AlarmId alarm, sim::SimTime offset, sim::SimTime period);

  /// Priority-ceiling resource acquire/release with nesting validation.
  /// Task bodies must release in reverse acquisition order (OSEK LIFO rule).
  support::Status GetResource(ResourceId resource);
  support::Status ReleaseResource(ResourceId resource);

  /// Installs a hook invoked whenever a runtime service returns an error.
  void SetErrorHook(std::function<void(const support::Status&)> hook) {
    error_hook_ = std::move(hook);
  }

  // --- introspection --------------------------------------------------------

  const std::string& name() const { return name_; }
  bool started() const { return started_; }
  sim::Simulator& simulator() { return simulator_; }

  /// Total completed task activations (all tasks).
  std::uint64_t activations_completed() const { return activations_completed_; }
  /// Completed activations of one task.
  std::uint64_t task_activations(TaskId task) const;
  /// Name lookup for diagnostics.
  support::Result<TaskId> FindTask(const std::string& name) const;

 private:
  struct Task {
    TaskConfig config;
    std::uint8_t pending = 0;       // queued activations
    EventMask pending_events = 0;   // events accumulated for next run
    std::uint64_t completed = 0;
  };

  struct Alarm {
    std::string name;
    AlarmAction action = AlarmAction::kCallback;
    TaskId task;
    EventMask events = 0;
    std::function<void()> callback;
    sim::SimTime period = 0;
    bool armed = false;
    std::uint64_t generation = 0;  // invalidates in-flight expiry events
  };

  void ArmAlarm(std::size_t index, sim::SimTime offset);
  void AlarmExpired(std::size_t index, std::uint64_t generation);
  void ScheduleDispatch();
  void Dispatch();
  void ReportError(support::Status status);

  sim::Simulator& simulator_;
  std::string name_;
  bool started_ = false;
  bool cpu_busy_ = false;
  bool dispatch_scheduled_ = false;
  std::vector<Task> tasks_;
  std::vector<Alarm> alarms_;
  struct Resource {
    std::string name;
    std::uint8_t ceiling;
    bool held = false;
  };
  std::vector<Resource> resources_;
  std::vector<ResourceId> resource_stack_;
  /// Alarms declared before StartOs, armed when the OS starts.
  std::vector<std::pair<std::size_t, sim::SimTime>> pending_arms_;
  std::uint64_t activations_completed_ = 0;
  std::function<void(const support::Status&)> error_hook_;
};

}  // namespace dacm::os
