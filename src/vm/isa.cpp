#include "vm/isa.hpp"

namespace dacm::vm {

namespace {
constexpr char kMagic[4] = {'P', 'V', 'M', '1'};
}

support::Bytes Program::Serialize() const {
  support::ByteWriter writer;
  writer.WriteRaw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), 4));
  writer.WriteU32(register_count);
  writer.WriteU32(static_cast<std::uint32_t>(entries.size()));
  for (const EntryPoint& entry : entries) {
    writer.WriteString(entry.name);
    writer.WriteU32(entry.pc);
  }
  writer.WriteBlob(code);
  return writer.Take();
}

support::Result<Program> Program::Deserialize(std::span<const std::uint8_t> data) {
  support::ByteReader reader(data);
  for (char expected : kMagic) {
    DACM_ASSIGN_OR_RETURN(std::uint8_t byte, reader.ReadU8());
    if (byte != static_cast<std::uint8_t>(expected)) {
      return support::Corrupted("bad PVM magic");
    }
  }
  Program program;
  DACM_ASSIGN_OR_RETURN(program.register_count, reader.ReadU32());
  if (program.register_count < kIoWindowBase + 1 || program.register_count > 4096) {
    return support::Corrupted("unreasonable register count");
  }
  DACM_ASSIGN_OR_RETURN(std::uint32_t entry_count, reader.ReadU32());
  if (entry_count > 64) return support::Corrupted("too many entry points");
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    EntryPoint entry;
    DACM_ASSIGN_OR_RETURN(entry.name, reader.ReadString());
    DACM_ASSIGN_OR_RETURN(entry.pc, reader.ReadU32());
    program.entries.push_back(std::move(entry));
  }
  DACM_ASSIGN_OR_RETURN(program.code, reader.ReadBlob());
  for (const EntryPoint& entry : program.entries) {
    if (entry.pc >= program.code.size()) {
      return support::Corrupted("entry point outside code: " + entry.name);
    }
  }
  return program;
}

support::Result<std::uint32_t> Program::FindEntry(const std::string& name) const {
  for (const EntryPoint& entry : entries) {
    if (entry.name == name) return entry.pc;
  }
  return support::NotFound("entry point: " + name);
}

}  // namespace dacm::vm
