#include "vm/isa.hpp"

#include <array>

namespace dacm::vm {

namespace {
constexpr char kMagic[4] = {'P', 'V', 'M', '1'};
}

support::Bytes Program::Serialize() const {
  support::ByteWriter writer;
  writer.WriteRaw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), 4));
  writer.WriteU32(register_count);
  writer.WriteU32(static_cast<std::uint32_t>(entries.size()));
  for (const EntryPoint& entry : entries) {
    writer.WriteString(entry.name);
    writer.WriteU32(entry.pc);
  }
  writer.WriteBlob(code);
  return writer.Take();
}

support::Result<Program> Program::Deserialize(std::span<const std::uint8_t> data) {
  // Scatter-free parse: the whole entry table is walked as views over the
  // input span first, so a malformed binary is rejected before anything is
  // allocated, and a good one pays exactly one sized allocation for the
  // entry vector and one for the code (plus out-of-SSO entry names).
  support::ByteReader reader(data);
  for (char expected : kMagic) {
    DACM_ASSIGN_OR_RETURN(std::uint8_t byte, reader.ReadU8());
    if (byte != static_cast<std::uint8_t>(expected)) {
      return support::Corrupted("bad PVM magic");
    }
  }
  Program program;
  DACM_ASSIGN_OR_RETURN(program.register_count, reader.ReadU32());
  if (program.register_count < kIoWindowBase + 1 || program.register_count > 4096) {
    return support::Corrupted("unreasonable register count");
  }
  DACM_ASSIGN_OR_RETURN(std::uint32_t entry_count, reader.ReadU32());
  if (entry_count > 64) return support::Corrupted("too many entry points");

  struct EntryView {
    std::string_view name;
    std::uint32_t pc;
  };
  std::array<EntryView, 64> entry_views;
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    DACM_ASSIGN_OR_RETURN(entry_views[i].name, reader.ReadStringView());
    DACM_ASSIGN_OR_RETURN(entry_views[i].pc, reader.ReadU32());
  }
  DACM_ASSIGN_OR_RETURN(std::span<const std::uint8_t> code, reader.ReadBlobView());
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    if (entry_views[i].pc >= code.size()) {
      return support::Corrupted("entry point outside code: " +
                                std::string(entry_views[i].name));
    }
  }

  program.entries.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    program.entries.push_back(
        EntryPoint{std::string(entry_views[i].name), entry_views[i].pc});
  }
  program.code.assign(code.begin(), code.end());
  return program;
}

support::Result<std::uint32_t> Program::FindEntry(const std::string& name) const {
  for (const EntryPoint& entry : entries) {
    if (entry.name == name) return entry.pc;
  }
  return support::NotFound("entry point: " + name);
}

}  // namespace dacm::vm
