#include "vm/interpreter.hpp"

#include <algorithm>

// Threaded (computed-goto) dispatch needs the GCC/Clang labels-as-values
// extension; everywhere else (MSVC) only the portable switch loop is
// compiled and DispatchKind::kThreaded silently degrades to it.  Define
// DACM_THREADED_DISPATCH=0 to force the switch loop on any compiler.
#ifndef DACM_THREADED_DISPATCH
#if defined(__GNUC__) || defined(__clang__)
#define DACM_THREADED_DISPATCH 1
#else
#define DACM_THREADED_DISPATCH 0
#endif
#endif

namespace dacm::vm {

VmInstance::VmInstance(Program program, PortEnv& env, VmLimits limits)
    : program_(std::move(program)), env_(env), limits_(limits) {
  registers_.assign(program_.register_count, 0);
}

bool VmInstance::ThreadedDispatchAvailable() {
  return DACM_THREADED_DISPATCH != 0;
}

support::Result<ExecResult> VmInstance::Run(const std::string& entry) {
  DACM_ASSIGN_OR_RETURN(std::uint32_t pc, program_.FindEntry(entry));
  return RunAt(pc);
}

std::int32_t VmInstance::Register(std::uint32_t index) const {
  return index < registers_.size() ? registers_[index] : 0;
}

void VmInstance::SetRegister(std::uint32_t index, std::int32_t value) {
  if (index < registers_.size()) registers_[index] = value;
}

ExecResult VmInstance::RunAt(std::uint32_t pc, DispatchKind dispatch) {
  ++activations_;
#if DACM_THREADED_DISPATCH
  const bool threaded = dispatch != DispatchKind::kSwitch;
#else
  const bool threaded = false;
  (void)dispatch;
#endif
  ExecResult result = threaded ? RunLoopThreaded(pc) : RunLoopSwitch(pc);
  total_fuel_used_ += result.fuel_used;
  return result;
}

// Compile the shared loop body once per dispatch strategy.
#define DACM_VM_LOOP_NAME RunLoopSwitch
#define DACM_VM_THREADED 0
#include "vm/interpreter_loop.inc"
#undef DACM_VM_LOOP_NAME
#undef DACM_VM_THREADED

#if DACM_THREADED_DISPATCH
#define DACM_VM_LOOP_NAME RunLoopThreaded
#define DACM_VM_THREADED 1
#include "vm/interpreter_loop.inc"
#undef DACM_VM_LOOP_NAME
#undef DACM_VM_THREADED
#else
// Never called in this configuration (RunAt pins `threaded` to false),
// but the symbol must exist for the out-of-line declaration.
ExecResult VmInstance::RunLoopThreaded(std::uint32_t pc) {
  return RunLoopSwitch(pc);
}
#endif

}  // namespace dacm::vm
