#include "vm/interpreter.hpp"

#include <algorithm>

namespace dacm::vm {

VmInstance::VmInstance(Program program, PortEnv& env, VmLimits limits)
    : program_(std::move(program)), env_(env), limits_(limits) {
  registers_.assign(program_.register_count, 0);
}

support::Result<ExecResult> VmInstance::Run(const std::string& entry) {
  DACM_ASSIGN_OR_RETURN(std::uint32_t pc, program_.FindEntry(entry));
  return RunAt(pc);
}

std::int32_t VmInstance::Register(std::uint32_t index) const {
  return index < registers_.size() ? registers_[index] : 0;
}

void VmInstance::SetRegister(std::uint32_t index, std::int32_t value) {
  if (index < registers_.size()) registers_[index] = value;
}

ExecResult VmInstance::RunAt(std::uint32_t pc) {
  ++activations_;
  ExecResult result;
  std::vector<std::int32_t> stack;
  stack.reserve(limits_.max_operand_stack);
  std::vector<std::uint32_t> call_stack;
  const support::Bytes& code = program_.code;

  auto fault = [&](std::string message) {
    result.outcome = ExecOutcome::kFault;
    result.fault = std::move(message);
  };
  auto pop = [&](std::int32_t& out) {
    if (stack.empty()) return false;
    out = stack.back();
    stack.pop_back();
    return true;
  };
  auto push = [&](std::int32_t v) {
    if (stack.size() >= limits_.max_operand_stack) return false;
    stack.push_back(v);
    return true;
  };
  auto fetch_u8 = [&](std::uint8_t& out) {
    if (pc >= code.size()) return false;
    out = code[pc++];
    return true;
  };
  auto fetch_i32 = [&](std::int32_t& out) {
    if (pc + 4 > code.size()) return false;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | code[pc + static_cast<std::uint32_t>(i)];
    pc += 4;
    out = static_cast<std::int32_t>(v);
    return true;
  };
  auto fetch_rel16 = [&](std::int16_t& out) {
    if (pc + 2 > code.size()) return false;
    const auto raw = static_cast<std::uint16_t>(code[pc] | (code[pc + 1] << 8));
    pc += 2;
    out = static_cast<std::int16_t>(raw);
    return true;
  };

  while (true) {
    if (result.fuel_used >= limits_.fuel_per_activation) {
      result.outcome = ExecOutcome::kFuelExhausted;
      break;
    }
    ++result.fuel_used;

    std::uint8_t raw_op = 0;
    if (!fetch_u8(raw_op)) {
      fault("pc out of bounds");
      break;
    }
    const Op op = static_cast<Op>(raw_op);
    bool done = false;
    switch (op) {
      case Op::kNop:
        break;
      case Op::kPush: {
        std::int32_t imm = 0;
        if (!fetch_i32(imm)) { fault("truncated PUSH"); done = true; break; }
        if (!push(imm)) { fault("operand stack overflow"); done = true; }
        break;
      }
      case Op::kPop: {
        std::int32_t v = 0;
        if (!pop(v)) { fault("stack underflow in POP"); done = true; }
        break;
      }
      case Op::kDup: {
        if (stack.empty()) { fault("stack underflow in DUP"); done = true; break; }
        if (!push(stack.back())) { fault("operand stack overflow"); done = true; }
        break;
      }
      case Op::kSwap: {
        if (stack.size() < 2) { fault("stack underflow in SWAP"); done = true; break; }
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        break;
      }
      case Op::kLoad: {
        std::uint8_t reg = 0;
        if (!fetch_u8(reg)) { fault("truncated LOAD"); done = true; break; }
        if (reg >= registers_.size()) { fault("register out of range"); done = true; break; }
        if (!push(registers_[reg])) { fault("operand stack overflow"); done = true; }
        break;
      }
      case Op::kStore: {
        std::uint8_t reg = 0;
        if (!fetch_u8(reg)) { fault("truncated STORE"); done = true; break; }
        if (reg >= registers_.size()) { fault("register out of range"); done = true; break; }
        std::int32_t v = 0;
        if (!pop(v)) { fault("stack underflow in STORE"); done = true; break; }
        registers_[reg] = v;
        break;
      }
      case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv: case Op::kMod:
      case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kShl: case Op::kShr:
      case Op::kCmpEq: case Op::kCmpLt: case Op::kCmpGt: {
        std::int32_t b = 0, a = 0;
        if (!pop(b) || !pop(a)) { fault("stack underflow in binary op"); done = true; break; }
        std::int32_t r = 0;
        switch (op) {
          case Op::kAdd: r = static_cast<std::int32_t>(
              static_cast<std::uint32_t>(a) + static_cast<std::uint32_t>(b)); break;
          case Op::kSub: r = static_cast<std::int32_t>(
              static_cast<std::uint32_t>(a) - static_cast<std::uint32_t>(b)); break;
          case Op::kMul: r = static_cast<std::int32_t>(
              static_cast<std::uint32_t>(a) * static_cast<std::uint32_t>(b)); break;
          case Op::kDiv:
            if (b == 0) { fault("division by zero"); done = true; break; }
            if (a == INT32_MIN && b == -1) { fault("division overflow"); done = true; break; }
            r = a / b;
            break;
          case Op::kMod:
            if (b == 0) { fault("modulo by zero"); done = true; break; }
            if (a == INT32_MIN && b == -1) { fault("modulo overflow"); done = true; break; }
            r = a % b;
            break;
          case Op::kAnd: r = a & b; break;
          case Op::kOr: r = a | b; break;
          case Op::kXor: r = a ^ b; break;
          case Op::kShl: r = static_cast<std::int32_t>(
              static_cast<std::uint32_t>(a) << (static_cast<std::uint32_t>(b) & 31)); break;
          case Op::kShr: r = a >> (static_cast<std::uint32_t>(b) & 31); break;
          case Op::kCmpEq: r = a == b ? 1 : 0; break;
          case Op::kCmpLt: r = a < b ? 1 : 0; break;
          case Op::kCmpGt: r = a > b ? 1 : 0; break;
          default: break;
        }
        if (done) break;
        if (!push(r)) { fault("operand stack overflow"); done = true; }
        break;
      }
      case Op::kNeg: {
        std::int32_t a = 0;
        if (!pop(a)) { fault("stack underflow in NEG"); done = true; break; }
        if (a == INT32_MIN) { fault("negation overflow"); done = true; break; }
        if (!push(-a)) { fault("operand stack overflow"); done = true; }
        break;
      }
      case Op::kJmp: {
        std::int16_t rel = 0;
        if (!fetch_rel16(rel)) { fault("truncated JMP"); done = true; break; }
        pc = static_cast<std::uint32_t>(static_cast<std::int64_t>(pc) + rel);
        break;
      }
      case Op::kJz: case Op::kJnz: {
        std::int16_t rel = 0;
        if (!fetch_rel16(rel)) { fault("truncated Jcc"); done = true; break; }
        std::int32_t v = 0;
        if (!pop(v)) { fault("stack underflow in Jcc"); done = true; break; }
        const bool take = (op == Op::kJz) ? (v == 0) : (v != 0);
        if (take) pc = static_cast<std::uint32_t>(static_cast<std::int64_t>(pc) + rel);
        break;
      }
      case Op::kCall: {
        std::int16_t rel = 0;
        if (!fetch_rel16(rel)) { fault("truncated CALL"); done = true; break; }
        if (call_stack.size() >= limits_.max_call_depth) {
          fault("call stack overflow");
          done = true;
          break;
        }
        call_stack.push_back(pc);
        pc = static_cast<std::uint32_t>(static_cast<std::int64_t>(pc) + rel);
        break;
      }
      case Op::kRet: {
        if (call_stack.empty()) {
          result.outcome = ExecOutcome::kHalted;
          done = true;
          break;
        }
        pc = call_stack.back();
        call_stack.pop_back();
        break;
      }
      case Op::kHalt:
        result.outcome = ExecOutcome::kHalted;
        done = true;
        break;
      case Op::kReadP: {
        std::uint8_t port = 0;
        if (!fetch_u8(port)) { fault("truncated READP"); done = true; break; }
        auto data = env_.ReadPort(port);
        if (!data.ok()) { fault("READP: " + data.status().ToString()); done = true; break; }
        const std::size_t n = std::min<std::size_t>(data->size(), kIoWindowSize);
        for (std::size_t i = 0; i < n; ++i) {
          registers_[kIoWindowBase + i] = (*data)[i];
        }
        if (!push(static_cast<std::int32_t>(n))) {
          fault("operand stack overflow");
          done = true;
        }
        break;
      }
      case Op::kWriteP: {
        std::uint8_t port = 0, count = 0;
        if (!fetch_u8(port) || !fetch_u8(count)) {
          fault("truncated WRITEP");
          done = true;
          break;
        }
        support::Bytes data(count);
        for (std::uint8_t i = 0; i < count; ++i) {
          data[i] = static_cast<std::uint8_t>(registers_[kIoWindowBase + i] & 0xff);
        }
        auto status = env_.WritePort(port, data);
        if (!status.ok()) { fault("WRITEP: " + status.ToString()); done = true; }
        break;
      }
      case Op::kAvailP: {
        std::uint8_t port = 0;
        if (!fetch_u8(port)) { fault("truncated AVAILP"); done = true; break; }
        if (!push(env_.PortAvailable(port) ? 1 : 0)) {
          fault("operand stack overflow");
          done = true;
        }
        break;
      }
      case Op::kClock: {
        if (!push(static_cast<std::int32_t>(env_.ClockMs()))) {
          fault("operand stack overflow");
          done = true;
        }
        break;
      }
      case Op::kTrap: {
        std::uint8_t code_byte = 0;
        if (!fetch_u8(code_byte)) { fault("truncated TRAP"); done = true; break; }
        result.outcome = ExecOutcome::kTrap;
        result.trap_code = code_byte;
        done = true;
        break;
      }
      default:
        fault("bad opcode " + std::to_string(raw_op));
        done = true;
        break;
    }
    if (done || result.outcome == ExecOutcome::kFault) break;
  }

  total_fuel_used_ += result.fuel_used;
  return result;
}

}  // namespace dacm::vm
