#include "vm/assembler.hpp"

#include <charconv>
#include <optional>
#include <unordered_map>

#include "support/string_util.hpp"

namespace dacm::vm {
namespace {

struct PendingBranch {
  std::size_t patch_pos;  // position of the rel16 operand in code
  std::string label;
  std::size_t line;
};

support::Status LineError(std::size_t line, const std::string& message) {
  return support::InvalidArgument("line " + std::to_string(line) + ": " + message);
}

std::optional<std::int64_t> ParseInt(std::string_view token) {
  std::int64_t value = 0;
  bool negative = false;
  if (!token.empty() && (token[0] == '-' || token[0] == '+')) {
    negative = token[0] == '-';
    token.remove_prefix(1);
  }
  if (token.empty()) return std::nullopt;
  int base = 10;
  if (token.size() > 2 && token[0] == '0' && (token[1] == 'x' || token[1] == 'X')) {
    base = 16;
    token.remove_prefix(2);
  }
  auto result = std::from_chars(token.data(), token.data() + token.size(), value, base);
  if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return negative ? -value : value;
}

void EmitU8(support::Bytes& code, std::uint8_t v) { code.push_back(v); }

void EmitI32(support::Bytes& code, std::int32_t v) {
  auto u = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i) {
    code.push_back(static_cast<std::uint8_t>(u & 0xff));
    u >>= 8;
  }
}

void EmitRel16Placeholder(support::Bytes& code) {
  code.push_back(0);
  code.push_back(0);
}

}  // namespace

support::Result<Program> Assemble(std::string_view source) {
  Program program;
  std::unordered_map<std::string, std::uint32_t> labels;
  std::vector<PendingBranch> branches;
  std::vector<std::tuple<std::string, std::string, std::size_t>> entry_decls;

  const std::unordered_map<std::string, Op> zero_operand = {
      {"NOP", Op::kNop},     {"POP", Op::kPop},     {"DUP", Op::kDup},
      {"SWAP", Op::kSwap},   {"ADD", Op::kAdd},     {"SUB", Op::kSub},
      {"MUL", Op::kMul},     {"DIV", Op::kDiv},     {"MOD", Op::kMod},
      {"NEG", Op::kNeg},     {"AND", Op::kAnd},     {"OR", Op::kOr},
      {"XOR", Op::kXor},     {"SHL", Op::kShl},     {"SHR", Op::kShr},
      {"CMPEQ", Op::kCmpEq}, {"CMPLT", Op::kCmpLt}, {"CMPGT", Op::kCmpGt},
      {"RET", Op::kRet},     {"HALT", Op::kHalt},   {"CLOCK", Op::kClock},
  };
  const std::unordered_map<std::string, Op> branch_ops = {
      {"JMP", Op::kJmp}, {"JZ", Op::kJz}, {"JNZ", Op::kJnz}, {"CALL", Op::kCall}};

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= source.size()) {
    std::size_t end = source.find('\n', start);
    if (end == std::string_view::npos) end = source.size();
    std::string_view raw = source.substr(start, end - start);
    start = end + 1;
    ++line_no;

    // Strip comment and whitespace.
    if (auto semi = raw.find(';'); semi != std::string_view::npos) {
      raw = raw.substr(0, semi);
    }
    std::string_view line = support::Trim(raw);
    if (line.empty()) continue;

    // Directive.
    if (line[0] == '.') {
      auto tokens = support::SplitWhitespace(line);
      if (tokens[0] == ".entry") {
        if (tokens.size() != 3) {
          return LineError(line_no, ".entry requires: .entry <name> <label>");
        }
        entry_decls.emplace_back(tokens[1], tokens[2], line_no);
        continue;
      }
      return LineError(line_no, "unknown directive " + tokens[0]);
    }

    // Label (possibly with an instruction on the same line: "loop: JMP x").
    if (auto colon = line.find(':'); colon != std::string_view::npos) {
      std::string label(support::Trim(line.substr(0, colon)));
      if (label.empty()) return LineError(line_no, "empty label");
      if (label.find(' ') != std::string::npos) {
        return LineError(line_no, "label contains whitespace: " + label);
      }
      if (!labels.emplace(label, static_cast<std::uint32_t>(program.code.size())).second) {
        return LineError(line_no, "duplicate label " + label);
      }
      line = support::Trim(line.substr(colon + 1));
      if (line.empty()) continue;
    }

    auto tokens = support::SplitWhitespace(line);
    const std::string& mnemonic = tokens[0];

    if (auto it = zero_operand.find(mnemonic); it != zero_operand.end()) {
      if (tokens.size() != 1) return LineError(line_no, mnemonic + " takes no operand");
      EmitU8(program.code, static_cast<std::uint8_t>(it->second));
      continue;
    }

    if (auto it = branch_ops.find(mnemonic); it != branch_ops.end()) {
      if (tokens.size() != 2) return LineError(line_no, mnemonic + " requires a label");
      EmitU8(program.code, static_cast<std::uint8_t>(it->second));
      branches.push_back(PendingBranch{program.code.size(), tokens[1], line_no});
      EmitRel16Placeholder(program.code);
      continue;
    }

    if (mnemonic == "PUSH") {
      if (tokens.size() != 2) return LineError(line_no, "PUSH requires an immediate");
      auto value = ParseInt(tokens[1]);
      if (!value || *value < INT32_MIN || *value > INT32_MAX) {
        return LineError(line_no, "bad immediate " + tokens[1]);
      }
      EmitU8(program.code, static_cast<std::uint8_t>(Op::kPush));
      EmitI32(program.code, static_cast<std::int32_t>(*value));
      continue;
    }

    if (mnemonic == "LOAD" || mnemonic == "STORE") {
      if (tokens.size() != 2) return LineError(line_no, mnemonic + " requires a register");
      auto reg = ParseInt(tokens[1]);
      if (!reg || *reg < 0 || *reg > 255) return LineError(line_no, "bad register");
      EmitU8(program.code, static_cast<std::uint8_t>(mnemonic == "LOAD" ? Op::kLoad
                                                                        : Op::kStore));
      EmitU8(program.code, static_cast<std::uint8_t>(*reg));
      continue;
    }

    if (mnemonic == "READP" || mnemonic == "AVAILP") {
      if (tokens.size() != 2) return LineError(line_no, mnemonic + " requires a port");
      auto port = ParseInt(tokens[1]);
      if (!port || *port < 0 || *port > 255) return LineError(line_no, "bad port");
      EmitU8(program.code, static_cast<std::uint8_t>(mnemonic == "READP" ? Op::kReadP
                                                                         : Op::kAvailP));
      EmitU8(program.code, static_cast<std::uint8_t>(*port));
      continue;
    }

    if (mnemonic == "WRITEP") {
      if (tokens.size() != 3) return LineError(line_no, "WRITEP requires: port count");
      auto port = ParseInt(tokens[1]);
      auto count = ParseInt(tokens[2]);
      if (!port || *port < 0 || *port > 255) return LineError(line_no, "bad port");
      if (!count || *count < 0 || *count > static_cast<std::int64_t>(kIoWindowSize)) {
        return LineError(line_no, "bad byte count");
      }
      EmitU8(program.code, static_cast<std::uint8_t>(Op::kWriteP));
      EmitU8(program.code, static_cast<std::uint8_t>(*port));
      EmitU8(program.code, static_cast<std::uint8_t>(*count));
      continue;
    }

    if (mnemonic == "TRAP") {
      if (tokens.size() != 2) return LineError(line_no, "TRAP requires a code");
      auto code = ParseInt(tokens[1]);
      if (!code || *code < 0 || *code > 255) return LineError(line_no, "bad trap code");
      EmitU8(program.code, static_cast<std::uint8_t>(Op::kTrap));
      EmitU8(program.code, static_cast<std::uint8_t>(*code));
      continue;
    }

    return LineError(line_no, "unknown mnemonic " + mnemonic);
  }

  // Resolve branches.
  for (const PendingBranch& branch : branches) {
    auto it = labels.find(branch.label);
    if (it == labels.end()) {
      return LineError(branch.line, "undefined label " + branch.label);
    }
    // rel16 is measured from the pc after the operand.
    const std::int64_t rel = static_cast<std::int64_t>(it->second) -
                             static_cast<std::int64_t>(branch.patch_pos + 2);
    if (rel < INT16_MIN || rel > INT16_MAX) {
      return LineError(branch.line, "branch out of rel16 range");
    }
    const auto rel16 = static_cast<std::uint16_t>(static_cast<std::int16_t>(rel));
    program.code[branch.patch_pos] = static_cast<std::uint8_t>(rel16 & 0xff);
    program.code[branch.patch_pos + 1] = static_cast<std::uint8_t>(rel16 >> 8);
  }

  // Resolve entries.
  for (const auto& [name, label, decl_line] : entry_decls) {
    auto it = labels.find(label);
    if (it == labels.end()) {
      return LineError(decl_line, "undefined entry label " + label);
    }
    program.entries.push_back(EntryPoint{name, it->second});
  }
  if (program.entries.empty()) {
    return support::InvalidArgument("program declares no entry points");
  }
  return program;
}

}  // namespace dacm::vm
