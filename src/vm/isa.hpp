// PVM instruction set architecture.
//
// The paper executes plug-ins in a Java VM so one binary runs on any ECU,
// sandboxed behind port-only I/O.  The PVM reproduces those properties
// with a compact stack machine:
//
//  * operands: 32-bit signed integers on an operand stack;
//  * storage: 256 local registers per plug-in instance (its entire
//    addressable memory — the "VM is assigned its own memory");
//  * control: relative branches, structured loops via branches;
//  * environment access *only* through port syscalls (READP/WRITEP/AVAILP)
//    and a millisecond clock (CLOCK), mediated by the PIRTE;
//  * preemption-free activations bounded by a fuel budget enforced by the
//    interpreter — the "best effort scheme" of §3.1.1.
//
// Binary format of a program (little-endian, see Program::Serialize):
//   magic "PVM1" | u32 register_count | u32 entry_count |
//   entries: name, u32 pc | u32 code_len | code bytes
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::vm {

enum class Op : std::uint8_t {
  kNop = 0x00,
  kPush,     // PUSH imm32          -> push immediate
  kPop,      // POP                 -> discard top
  kDup,      // DUP                 -> duplicate top
  kSwap,     // SWAP                -> swap top two
  kLoad,     // LOAD r              -> push register r
  kStore,    // STORE r             -> pop into register r
  kAdd,      // ADD                 -> pop b, a; push a+b
  kSub,      // SUB
  kMul,      // MUL
  kDiv,      // DIV (traps on /0)
  kMod,      // MOD (traps on %0)
  kNeg,      // NEG
  kAnd,      // AND (bitwise)
  kOr,       // OR
  kXor,      // XOR
  kShl,      // SHL
  kShr,      // SHR (arithmetic)
  kCmpEq,    // CMPEQ               -> push a==b
  kCmpLt,    // CMPLT               -> push a<b (signed)
  kCmpGt,    // CMPGT
  kJmp,      // JMP rel16           -> relative jump (signed, from next pc)
  kJz,       // JZ rel16            -> jump if popped value == 0
  kJnz,      // JNZ rel16
  kCall,     // CALL rel16          -> push return pc on call stack
  kRet,      // RET                 -> return (or halt if call stack empty)
  kHalt,     // HALT                -> end activation normally
  kReadP,    // READP p             -> read plug-in port p: pushes length
             //                        then bytes land in registers 128..
  kWriteP,   // WRITEP p, n         -> write n bytes from registers 128.. to port p
  kAvailP,   // AVAILP p            -> push 1 if port p has fresh data
  kClock,    // CLOCK               -> push VM clock (ms, 32-bit wrap)
  kTrap,     // TRAP imm8           -> deliberate fault (tests fault handling)
};

/// One named entry point (the plug-in's reaction handlers).
struct EntryPoint {
  std::string name;  // e.g. "on_install", "on_data", "step"
  std::uint32_t pc = 0;
};

/// A verified-loadable PVM binary.
struct Program {
  std::uint32_t register_count = 256;
  std::vector<EntryPoint> entries;
  support::Bytes code;

  /// Serializes to the wire format carried inside installation packages.
  support::Bytes Serialize() const;

  /// Parses and structurally validates a binary (magic, bounds).
  static support::Result<Program> Deserialize(std::span<const std::uint8_t> data);

  /// Finds an entry point by name.
  support::Result<std::uint32_t> FindEntry(const std::string& name) const;
};

/// Registers 128..255 form the I/O window used by READP/WRITEP: each
/// register holds one byte of the message.
constexpr std::uint32_t kIoWindowBase = 128;
constexpr std::uint32_t kIoWindowSize = 128;

}  // namespace dacm::vm
