// PVM assembler.
//
// Plug-ins in examples and tests are written in a small assembly dialect
// and assembled to Program binaries (the artifact a plug-in developer
// would upload to the trusted server).
//
// Syntax (one statement per line, ';' starts a comment):
//
//   .entry <name> <label>     ; exported entry point
//   <label>:                  ; position label
//   PUSH <imm32>              ; also LOAD/STORE <reg>, READP <port>,
//   WRITEP <port> <n>         ;   AVAILP <port>, TRAP <code>
//   JMP <label>               ; also JZ/JNZ/CALL
//   ADD SUB MUL DIV MOD NEG AND OR XOR SHL SHR
//   CMPEQ CMPLT CMPGT DUP POP SWAP NOP CLOCK RET HALT
#pragma once

#include <string_view>

#include "support/status.hpp"
#include "vm/isa.hpp"

namespace dacm::vm {

/// Assembles source text into a Program.  Errors carry the line number.
support::Result<Program> Assemble(std::string_view source);

}  // namespace dacm::vm
