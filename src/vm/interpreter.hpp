// PVM interpreter.
//
// Each plug-in instance owns one VmInstance: registers persist across
// activations (the plug-in's state), while the operand and call stacks
// reset per activation.  Every activation runs under a fuel budget; when
// fuel runs out the activation is abandoned (registers keep their current
// values) and the caller — the PIRTE — decides what to do, implementing
// the paper's best-effort execution without priority inversion into the
// built-in software.
//
// All environment access goes through the PortEnv interface, implemented
// by the PIRTE: the plug-in can only see its own ports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/status.hpp"
#include "vm/isa.hpp"

namespace dacm::vm {

/// Environment a plug-in runs against (implemented by the PIRTE).
class PortEnv {
 public:
  virtual ~PortEnv() = default;

  /// Reads the current message on plug-in port `port` (empty if none).
  virtual support::Result<support::Bytes> ReadPort(std::uint8_t port) = 0;

  /// Writes a message to plug-in port `port`.
  virtual support::Status WritePort(std::uint8_t port,
                                    std::span<const std::uint8_t> data) = 0;

  /// True if fresh (unread) data is pending on `port`.
  virtual bool PortAvailable(std::uint8_t port) = 0;

  /// Milliseconds since ECU start (wraps at 2^32).
  virtual std::uint32_t ClockMs() = 0;
};

enum class ExecOutcome {
  kHalted,         // HALT / final RET reached
  kFuelExhausted,  // budget spent before completion
  kTrap,           // explicit TRAP instruction
  kFault,          // runtime fault (bad opcode, /0, stack, bounds)
};

struct ExecResult {
  ExecOutcome outcome = ExecOutcome::kHalted;
  std::uint64_t fuel_used = 0;
  std::uint8_t trap_code = 0;   // valid when outcome == kTrap
  std::string fault;            // valid when outcome == kFault
};

struct VmLimits {
  std::uint32_t max_operand_stack = 64;
  std::uint32_t max_call_depth = 16;
  std::uint64_t fuel_per_activation = 100'000;
};

/// Which inner-loop dispatch strategy an activation uses.  kDefault picks
/// computed-goto threaded dispatch where the compiler supports it (GCC,
/// Clang) and the portable switch loop elsewhere; the explicit values let
/// the differential tests pin each strategy and compare results.
enum class DispatchKind {
  kDefault,
  kSwitch,
  kThreaded,  // falls back to kSwitch when unavailable
};

class VmInstance {
 public:
  VmInstance(Program program, PortEnv& env, VmLimits limits = {});

  /// True when this build has the computed-goto dispatch loop compiled in.
  static bool ThreadedDispatchAvailable();

  /// Runs the entry point `entry`; returns kNotFound if it doesn't exist.
  support::Result<ExecResult> Run(const std::string& entry);

  /// Runs from an absolute pc (used by tests).
  ExecResult RunAt(std::uint32_t pc, DispatchKind dispatch = DispatchKind::kDefault);

  /// Plug-in state inspection (tests / diagnostics).
  std::int32_t Register(std::uint32_t index) const;
  void SetRegister(std::uint32_t index, std::int32_t value);

  const Program& program() const { return program_; }
  std::uint64_t total_fuel_used() const { return total_fuel_used_; }
  std::uint64_t activations() const { return activations_; }

 private:
  // The interpreter loop body lives in interpreter_loop.inc and is compiled
  // once per dispatch strategy (see interpreter.cpp).
  ExecResult RunLoopSwitch(std::uint32_t pc);
  ExecResult RunLoopThreaded(std::uint32_t pc);

  Program program_;
  PortEnv& env_;
  VmLimits limits_;
  std::vector<std::int32_t> registers_;
  std::uint64_t total_fuel_used_ = 0;
  std::uint64_t activations_ = 0;
};

}  // namespace dacm::vm
