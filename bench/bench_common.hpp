// Shared fixtures for the figure benchmarks.
//
// BenchStack — a single-ECU plug-in SW-C with a loopback Type II channel
// and a Type III virtual-port pair, mirroring the unit-test harness: the
// cheapest complete environment in which every PLC routing kind can be
// exercised.
//
// ScriptedVehicle — a scripted ECM endpoint for server benchmarks: accepts
// pushes and acks instantly, so benchmarks measure the server pipeline,
// not the vehicle.
//
// DACM_BENCH_MAIN — the shared driver entry point.  On top of the stock
// Google Benchmark flags it understands:
//   --json          emit JSON results on stdout (instead of the console table)
//   --json=PATH     keep the console table, write JSON results to PATH
//   --metrics       dump the Prometheus text exposition of the process-wide
//                   metrics registry on stderr after the run
//   --metrics=PATH  write the registry's JSON snapshot (counters, gauges,
//                   histogram quantiles) to PATH after the run
// The `bench_all` CMake target uses `--json=PATH` to aggregate every bench
// binary's output into BENCH_results.json; the CI metrics-smoke step greps
// `--metrics` output for the required metric families.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bsw/nvm.hpp"
#include "fes/appgen.hpp"
#include "fes/ecu.hpp"
#include "fes/testbed.hpp"
#include "pirte/pirte.hpp"
#include "server/server.hpp"
#include "sim/network.hpp"
#include "support/metrics.hpp"

namespace dacm::bench {

/// Driver entry point: translates the `--json[=PATH]` convenience flag
/// into the underlying benchmark reporter flags, then runs as usual.
inline int BenchMain(int argc, char** argv) {
  std::vector<std::string> args;
  bool metrics_text = false;
  std::string metrics_json_path;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  args.emplace_back(argc > 0 ? argv[0] : "bench");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      args.emplace_back("--benchmark_format=json");
    } else if (arg.rfind("--json=", 0) == 0) {
      args.emplace_back("--benchmark_out=" + arg.substr(sizeof("--json=") - 1));
      args.emplace_back("--benchmark_out_format=json");
    } else if (arg == "--metrics") {
      metrics_text = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_json_path = arg.substr(sizeof("--metrics=") - 1);
    } else {
      args.emplace_back(arg);
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& s : args) argv2.push_back(s.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Registry dumps after the run, cumulative over every benchmark that
  // executed.  Text goes to stderr so `--json` stdout stays parseable.
  if (metrics_text) {
    const std::string exposition = support::Metrics::Instance().TextExposition();
    std::fwrite(exposition.data(), 1, exposition.size(), stderr);
  }
  if (!metrics_json_path.empty()) {
    std::FILE* out = std::fopen(metrics_json_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write metrics snapshot to %s\n",
                   metrics_json_path.c_str());
      return 1;
    }
    const std::string json = support::Metrics::Instance().Json();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
  }
  return 0;
}

#define DACM_BENCH_MAIN()                      \
  int main(int argc, char** argv) {            \
    return ::dacm::bench::BenchMain(argc, argv); \
  }

class BenchStack {
 public:
  sim::Simulator simulator;
  sim::CanBus bus{simulator, 500'000};
  fes::Ecu ecu{simulator, bus, 1, "ECU1"};
  bsw::Nvm nvm;
  std::unique_ptr<pirte::Pirte> pirte;
  rte::PortId native_out, native_in;     // built-in S/R baseline pair
  rte::PortId drv_sensor, mon_act;       // harness ends of the Type III ports

  explicit BenchStack(std::size_t max_plugins = 64) {
    rte::Rte& rte = ecu.ecu_rte();
    auto plug_swc = *rte.AddSwc("Plug");
    auto harness_swc = *rte.AddSwc("Harness");

    auto add_port = [&](rte::SwcId swc, const char* name, rte::PortDirection dir) {
      rte::PortConfig config;
      config.name = name;
      config.direction = dir;
      config.max_len = 4096;
      return *rte.AddPort(swc, std::move(config));
    };

    auto t2_out = add_port(plug_swc, "t2.out", rte::PortDirection::kProvided);
    auto t2_in = add_port(plug_swc, "t2.in", rte::PortDirection::kRequired);
    auto act_out = add_port(plug_swc, "ActReq", rte::PortDirection::kProvided);
    auto sensor_in = add_port(plug_swc, "SensorProv", rte::PortDirection::kRequired);
    native_out = add_port(harness_swc, "native.out", rte::PortDirection::kProvided);
    native_in = add_port(harness_swc, "native.in", rte::PortDirection::kRequired);
    mon_act = add_port(harness_swc, "mon.act", rte::PortDirection::kRequired);
    drv_sensor = add_port(harness_swc, "drv.sensor", rte::PortDirection::kProvided);

    (void)rte.ConnectLocal(t2_out, t2_in);  // Type II loopback
    (void)rte.ConnectLocal(act_out, mon_act);
    (void)rte.ConnectLocal(drv_sensor, sensor_in);
    (void)rte.ConnectLocal(native_out, native_in);

    pirte::PirteConfig config;
    config.name = "P1";
    config.ecu_id = 1;
    config.swc = plug_swc;
    config.max_plugins = max_plugins;

    pirte::VirtualPortConfig v1;
    v1.id = 1;
    v1.name = "t2.loop";
    v1.kind = pirte::VirtualPortKind::kTypeII;
    v1.swc_out = t2_out;
    v1.swc_in = t2_in;
    config.virtual_ports.push_back(v1);

    pirte::VirtualPortConfig v4;
    v4.id = 4;
    v4.name = "ActReq";
    v4.kind = pirte::VirtualPortKind::kTypeIII;
    v4.swc_out = act_out;
    config.virtual_ports.push_back(v4);

    pirte::VirtualPortConfig v6;
    v6.id = 6;
    v6.name = "SensorProv";
    v6.kind = pirte::VirtualPortKind::kTypeIII;
    v6.swc_in = sensor_in;
    config.virtual_ports.push_back(v6);

    pirte = std::make_unique<pirte::Pirte>(rte, &nvm, nullptr, std::move(config));
    (void)pirte->Init();
    (void)ecu.Start();
    simulator.Run();
  }

  /// Installs a plug-in directly (no server round-trip).
  void Install(const pirte::InstallationPackage& package) {
    (void)pirte->Install(package);
    simulator.Run();
  }
};

/// Builds a plug-in package around a binary with `ports` PIC entries whose
/// unique ids start at `base_uid`; PLC entries are supplied by the caller.
inline pirte::InstallationPackage MakePackage(const std::string& name,
                                              support::Bytes binary,
                                              std::vector<pirte::PicEntry> pic,
                                              std::vector<pirte::PlcEntry> plc = {}) {
  pirte::InstallationPackage package;
  package.plugin_name = name;
  package.version = "1.0";
  package.pic.entries = std::move(pic);
  package.plc.entries = std::move(plc);
  package.binary = std::move(binary);
  return package;
}

/// Scripted vehicle endpoint: immediately acks every install/uninstall push.
class ScriptedVehicle {
 public:
  ScriptedVehicle(sim::Simulator& simulator, sim::Network& network,
                  server::TrustedServer& server, std::string vin)
      : simulator_(simulator), vin_(std::move(vin)) {
    auto client = network.Connect(server.address());
    peer_ = std::move(*client);
    peer_->SetReceiveHandler([this](const support::SharedBytes& data) {
      auto envelope = pirte::Envelope::Deserialize(data);
      if (!envelope.ok()) return;
      auto message = pirte::PirteMessage::Deserialize(envelope->message);
      if (!message.ok()) return;
      if (message->type == pirte::MessageType::kInstallPackage ||
          message->type == pirte::MessageType::kUninstall) {
        pirte::PirteMessage ack;
        ack.type = pirte::MessageType::kAck;
        ack.plugin_name = message->plugin_name;
        ack.ok = true;
        pirte::Envelope reply;
        reply.kind = pirte::Envelope::Kind::kPirteMessage;
        reply.vin = vin_;
        reply.message = ack.Serialize();
        (void)peer_->Send(reply.Serialize());
      }
    });
    pirte::Envelope hello;
    hello.kind = pirte::Envelope::Kind::kHello;
    hello.vin = vin_;
    (void)peer_->Send(hello.Serialize());
    simulator_.Run();
  }

 private:
  sim::Simulator& simulator_;
  std::string vin_;
  std::shared_ptr<sim::NetPeer> peer_;
};

}  // namespace dacm::bench
