// FIG1-B — VM sandboxing cost (paper Figure 1, §3.1.1).
//
// The paper runs plug-ins in a VM "under a best effort scheme, avoiding
// competition for resources with the built-in functionality".  This
// benchmark quantifies the three costs of that choice:
//
//   * interpretation overhead: PVM-executed arithmetic vs the same loop
//     native (who pays for portability);
//   * fuel-budget enforcement: activation cost when the budget is hit
//     (the isolation mechanism itself);
//   * plug-in count scaling inside one SW-C: N step-scheduled plug-ins
//     sharing one VM task.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "vm/assembler.hpp"

namespace dacm::bench {
namespace {

class NullEnv final : public vm::PortEnv {
 public:
  support::Result<support::Bytes> ReadPort(std::uint8_t) override {
    return support::Bytes{};
  }
  support::Status WritePort(std::uint8_t, std::span<const std::uint8_t>) override {
    return support::OkStatus();
  }
  bool PortAvailable(std::uint8_t) override { return false; }
  std::uint32_t ClockMs() override { return 0; }
};

// Native baseline: the spin loop the PVM kernel below encodes.
void BM_NativeSpinLoop(benchmark::State& state) {
  const std::int32_t iterations = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    std::int32_t counter = iterations;
    while (counter != 0) counter = counter - 1;
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * iterations);
}
BENCHMARK(BM_NativeSpinLoop)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// The same loop interpreted by the PVM (~6 instructions per turn).
void BM_VmSpinLoop(benchmark::State& state) {
  const std::uint32_t iterations = static_cast<std::uint32_t>(state.range(0));
  auto program = vm::Program::Deserialize(fes::MakeSpinPluginBinary(iterations));
  NullEnv env;
  vm::VmLimits limits;
  limits.fuel_per_activation = 10'000'000;  // never the limiter here
  vm::VmInstance instance(*program, env, limits);
  for (auto _ : state) {
    auto result = instance.Run("on_data");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * iterations);
  state.counters["fuel_per_run"] =
      static_cast<double>(instance.total_fuel_used()) /
      static_cast<double>(instance.activations());
}
BENCHMARK(BM_VmSpinLoop)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// Fuel exhaustion: an unbounded loop cut off by the budget.  The cost of
// one confined activation is the budget itself — this is what a hostile
// plug-in can extract per activation, no more.
void BM_VmFuelExhaustion(benchmark::State& state) {
  auto program = vm::Program::Deserialize(fes::AssembleOrDie(R"(
    .entry on_data spin
    spin:
    loop: JMP loop
  )"));
  NullEnv env;
  vm::VmLimits limits;
  limits.fuel_per_activation = static_cast<std::uint64_t>(state.range(0));
  vm::VmInstance instance(*program, env, limits);
  std::uint64_t exhausted = 0;
  for (auto _ : state) {
    auto result = instance.Run("on_data");
    if (result.ok() && result->outcome == vm::ExecOutcome::kFuelExhausted) {
      ++exhausted;
    }
  }
  state.counters["exhaustions"] =
      benchmark::Counter(static_cast<double>(exhausted));
  state.SetItemsProcessed(state.iterations() * state.range(0));  // fuel burned
}
BENCHMARK(BM_VmFuelExhaustion)->Arg(1000)->Arg(10000)->Arg(100000);

// N step-scheduled plug-ins inside one SW-C: simulated cost of one full
// step round (the periodic tick enqueues N activations on the VM task).
void BM_PluginCountStepRound(benchmark::State& state) {
  const int plugins = static_cast<int>(state.range(0));
  BenchStack stack(/*max_plugins=*/64);
  for (int i = 0; i < plugins; ++i) {
    stack.Install(MakePackage(
        "p" + std::to_string(i), fes::MakeSpinPluginBinary(10),
        {{0, "in", static_cast<std::uint8_t>(i),
          pirte::PluginPortDirection::kRequired}}));
  }
  // Drive rounds by hand: deliver one tick's worth of work per iteration.
  for (auto _ : state) {
    for (int i = 0; i < plugins; ++i) {
      (void)stack.pirte->DeliverToPluginPortByUnique(
          static_cast<std::uint8_t>(i), support::Bytes{1});
    }
    stack.simulator.Run();
  }
  state.SetItemsProcessed(state.iterations() * plugins);
  state.counters["vm_activations"] = benchmark::Counter(
      static_cast<double>(stack.pirte->stats().vm_activations));
}
BENCHMARK(BM_PluginCountStepRound)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace dacm::bench

DACM_BENCH_MAIN();
