// FIG1-A — routing cost per special-purpose port type (paper Figure 1,
// §3.1.3).
//
// Measures the wall-clock cost of delivering one message along each of the
// architecture's paths, against the native built-in RTE write as baseline:
//
//   native      — built-in SW-C provided port -> required port (RTE only);
//   type3_in    — system -> virtual port V6 -> plug-in reaction;
//   type3_out   — plug-in write -> virtual port V4 -> built-in port;
//   plugin_link — plug-in -> plug-in direct PIRTE link (same SW-C);
//   type2_mux   — plug-in -> virtual port V1 (recipient id attached) ->
//                 Type II SW-C pair -> id stripped -> recipient plug-in.
//
// Expected shape: native < type3 < plugin_link ≈ type2; everything is
// micro-scale next to a CAN frame time (~200 us at 500 kbit/s).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace dacm::bench {
namespace {

support::Bytes Payload(std::size_t size) {
  support::Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) data[i] = static_cast<std::uint8_t>(i);
  return data;
}

// Baseline: one native RTE write between built-in ports.
void BM_NativeRteWrite(benchmark::State& state) {
  BenchStack stack;
  const auto payload = Payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    (void)stack.ecu.ecu_rte().Write(stack.native_out, payload);
    stack.simulator.Run();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_NativeRteWrite)->Arg(1)->Arg(8)->Arg(64);

// System -> plug-in through Type III virtual port V6 (plug-in halts
// immediately: the figure isolates routing, not plug-in compute).
void BM_Type3In(benchmark::State& state) {
  BenchStack stack;
  auto sink = fes::AssembleOrDie(R"(
    .entry on_data h
    h: HALT
  )");
  stack.Install(MakePackage(
      "sink", sink, {{0, "in", 0, pirte::PluginPortDirection::kRequired}},
      {{0, pirte::PlcKind::kVirtual, 6, 0, "", 0}}));
  const auto payload = Payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    (void)stack.ecu.ecu_rte().Write(stack.drv_sensor, payload);
    stack.simulator.Run();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Type3In)->Arg(1)->Arg(8)->Arg(64);

// Plug-in -> system through Type III virtual port V4.  The echo plug-in is
// triggered via V6, reads the payload and forwards it out — this path also
// includes one VM activation, like every plug-in-originated write.
void BM_Type3OutViaPlugin(benchmark::State& state) {
  BenchStack stack;
  stack.Install(MakePackage(
      "echo", fes::MakeEchoPluginBinary(),
      {{0, "in", 0, pirte::PluginPortDirection::kRequired},
       {1, "out", 1, pirte::PluginPortDirection::kProvided}},
      {{0, pirte::PlcKind::kVirtual, 6, 0, "", 0},
       {1, pirte::PlcKind::kVirtual, 4, 0, "", 0}}));
  const auto payload = Payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    (void)stack.ecu.ecu_rte().Write(stack.drv_sensor, payload);
    stack.simulator.Run();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Type3OutViaPlugin)->Arg(1)->Arg(8)->Arg(16);

// Plug-in -> plug-in on the same SW-C: direct PIRTE link (PLC kLocalPlugin).
void BM_PluginDirectLink(benchmark::State& state) {
  BenchStack stack;
  auto sink = fes::AssembleOrDie(R"(
    .entry on_data h
    h: HALT
  )");
  stack.Install(MakePackage(
      "sink", sink, {{0, "in", 10, pirte::PluginPortDirection::kRequired}}));
  stack.Install(MakePackage(
      "src", fes::MakeEchoPluginBinary(),
      {{0, "in", 11, pirte::PluginPortDirection::kRequired},
       {1, "out", 12, pirte::PluginPortDirection::kProvided}},
      {{0, pirte::PlcKind::kVirtual, 6, 0, "", 0},
       {1, pirte::PlcKind::kLocalPlugin, 0, 0, "sink", 0}}));
  const auto payload = Payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    (void)stack.ecu.ecu_rte().Write(stack.drv_sensor, payload);
    stack.simulator.Run();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PluginDirectLink)->Arg(1)->Arg(8)->Arg(16);

// Plug-in -> plug-in through the multiplexed Type II channel (the loopback
// V1 pair): recipient unique id attached on the way out, stripped and
// demultiplexed on arrival.
void BM_Type2Mux(benchmark::State& state) {
  BenchStack stack;
  auto sink = fes::AssembleOrDie(R"(
    .entry on_data h
    h: HALT
  )");
  stack.Install(MakePackage(
      "sink", sink, {{0, "in", 20, pirte::PluginPortDirection::kRequired}}));
  stack.Install(MakePackage(
      "src", fes::MakeEchoPluginBinary(),
      {{0, "in", 21, pirte::PluginPortDirection::kRequired},
       {1, "out", 22, pirte::PluginPortDirection::kProvided}},
      {{0, pirte::PlcKind::kVirtual, 6, 0, "", 0},
       {1, pirte::PlcKind::kVirtualRemote, 1, 20, "", 0}}));
  const auto payload = Payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    (void)stack.ecu.ecu_rte().Write(stack.drv_sensor, payload);
    stack.simulator.Run();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Type2Mux)->Arg(1)->Arg(8)->Arg(16);

// The guarded variant of the plug-in -> system path: the OEM's fault
// protection (length + value-range checks) sits in the virtual port.
// Compare against BM_Type3OutViaPlugin for the monitor's overhead.
void BM_Type3OutGuarded(benchmark::State& state) {
  sim::Simulator guard_sim;  // clock source for the rate limiter
  pirte::GuardPolicy policy;
  policy.name = "ActReq";
  policy.min_len = 1;
  policy.max_len = 64;
  policy.check_value = true;
  policy.min_value = -1000;
  policy.max_value = 1000;
  auto guard = pirte::SignalGuard::Create(guard_sim, policy, nullptr,
                                          bsw::DemEventId::Invalid());
  BenchStack stack;
  // Rebuild V4 with the guard installed is not possible post-Init, so
  // measure the translator itself on top of the unguarded path: the
  // end-to-end guarded cost is BM_Type3OutViaPlugin + this delta.
  auto translator = guard->MakeTranslator();
  support::Bytes payload(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    auto verdict = translator(payload);
    benchmark::DoNotOptimize(verdict);
  }
  // Sizes 1 and 64 skip the i32 value check (pass path: length gate only);
  // size 4 decodes to a value far outside [-1000, 1000], so that row
  // measures the clamp path (guard_passed stays 0 there by design).
  state.counters["guard_passed"] =
      static_cast<double>(guard->stats().passed);
  state.counters["guard_clamped"] =
      static_cast<double>(guard->stats().clamped);
}
BENCHMARK(BM_Type3OutGuarded)->Arg(1)->Arg(4)->Arg(64);

// Scaling: N sink plug-ins share ONE Type II pair; the mux must find the
// right recipient.  Static SW-C port count stays constant (reported as a
// counter) — the paper's "any number of plug-in ports ... through one pair
// of static type II SW-C ports".
void BM_Type2MuxFanout(benchmark::State& state) {
  const int sinks = static_cast<int>(state.range(0));
  BenchStack stack;
  auto sink = fes::AssembleOrDie(R"(
    .entry on_data h
    h: HALT
  )");
  for (int i = 0; i < sinks; ++i) {
    stack.Install(MakePackage(
        "sink" + std::to_string(i), sink,
        {{0, "in", static_cast<std::uint8_t>(30 + i),
          pirte::PluginPortDirection::kRequired}}));
  }
  stack.Install(MakePackage(
      "src", fes::MakeEchoPluginBinary(),
      {{0, "in", 2, pirte::PluginPortDirection::kRequired},
       {1, "out", 3, pirte::PluginPortDirection::kProvided}},
      {{0, pirte::PlcKind::kVirtual, 6, 0, "", 0},
       {1, pirte::PlcKind::kVirtualRemote, 1,
        static_cast<std::uint8_t>(30 + sinks - 1), "", 0}}));
  const auto payload = Payload(8);
  for (auto _ : state) {
    (void)stack.ecu.ecu_rte().Write(stack.drv_sensor, payload);
    stack.simulator.Run();
  }
  state.counters["static_swc_ports"] = 2;  // one Type II pair, always
  state.counters["logical_connections"] = sinks;
}
BENCHMARK(BM_Type2MuxFanout)->Arg(1)->Arg(4)->Arg(16)->Arg(48);

}  // namespace
}  // namespace dacm::bench

DACM_BENCH_MAIN();
