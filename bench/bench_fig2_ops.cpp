// FIG2-B — uninstall and restore operations (paper §3.2.2).
//
// Uninstall consults the InstalledAPP table for dependents before pushing
// removal messages; restore filters the table by the replaced ECU and
// re-pushes the recorded packages.  Both should scale gracefully with the
// installed-app population and with dependency-chain depth.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace dacm::bench {
namespace {

struct OpsBench {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMicrosecond};
  server::TrustedServer server{network, "srv:443"};
  server::UserId user = server::UserId::Invalid();
  std::unique_ptr<ScriptedVehicle> vehicle;

  OpsBench() {
    (void)server.Start();
    (void)server.UploadVehicleModel(fes::MakeRpiTestbedConf());
    user = *server.CreateUser("bench");
    (void)server.BindVehicle(user, "VIN-1", "rpi-testbed");
    vehicle = std::make_unique<ScriptedVehicle>(simulator, network, server, "VIN-1");
  }

  void UploadAndDeploy(const std::string& name,
                       std::vector<std::string> depends = {}) {
    fes::SyntheticAppParams params;
    params.name = name;
    params.vehicle_model = "rpi-testbed";
    params.target_ecu = 1;
    params.depends_on = std::move(depends);
    (void)server.UploadApp(fes::MakeSyntheticApp(params));
    (void)server.Deploy(user, "VIN-1", name);
    simulator.Run();
  }
};

// Uninstall/redeploy cycle of a leaf app vs total installed apps (the
// dependent scan walks the whole table).
void BM_UninstallVsInstalledApps(benchmark::State& state) {
  OpsBench bench;
  for (int i = 0; i < state.range(0); ++i) {
    bench.UploadAndDeploy("filler" + std::to_string(i));
  }
  bench.UploadAndDeploy("leaf");
  for (auto _ : state) {
    (void)bench.server.UninstallApp(bench.user, "VIN-1", "leaf");
    bench.simulator.Run();
    (void)bench.server.Deploy(bench.user, "VIN-1", "leaf");
    bench.simulator.Run();
  }
  state.counters["installed_apps"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UninstallVsInstalledApps)->Arg(4)->Arg(32)->Arg(128)->Arg(256);

// The dependency guard at work: attempting to uninstall the root of a
// dependency chain of depth D (always rejected; measures the dependent
// check, which must name the blocking apps).
void BM_UninstallBlockedByChain(benchmark::State& state) {
  OpsBench bench;
  const int depth = static_cast<int>(state.range(0));
  bench.UploadAndDeploy("chain0");
  for (int i = 1; i < depth; ++i) {
    bench.UploadAndDeploy("chain" + std::to_string(i),
                          {"chain" + std::to_string(i - 1)});
  }
  for (auto _ : state) {
    auto status = bench.server.UninstallApp(bench.user, "VIN-1", "chain0");
    benchmark::DoNotOptimize(status);
  }
  state.counters["chain_depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_UninstallBlockedByChain)->Arg(2)->Arg(4)->Arg(8);

// Restore after ECU replacement vs the number of apps recorded on that
// ECU (each one re-pushed from its stored package bytes).
void BM_RestoreVsAppsOnEcu(benchmark::State& state) {
  OpsBench bench;
  for (int i = 0; i < state.range(0); ++i) {
    bench.UploadAndDeploy("app" + std::to_string(i));
  }
  for (auto _ : state) {
    (void)bench.server.Restore(bench.user, "VIN-1", 1);
    bench.simulator.Run();  // scripted acks flip rows back to kInstalled
  }
  state.counters["apps_on_ecu"] = static_cast<double>(state.range(0));
  state.counters["packages_pushed"] =
      static_cast<double>(bench.server.stats().packages_pushed);
}
BENCHMARK(BM_RestoreVsAppsOnEcu)->Arg(1)->Arg(8)->Arg(32)->Arg(64);

}  // namespace
}  // namespace dacm::bench

DACM_BENCH_MAIN();
