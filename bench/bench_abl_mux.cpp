// ABL-1 — Type II multiplexing ablation (paper §3.1.3).
//
// The paper routes any number of plug-in connections over ONE static pair
// of Type II SW-C ports by attaching the recipient's unique port id.  The
// ablation compares this against the hypothetical alternative the design
// rejects: one statically configured SW-C port pair *per logical
// connection* (which would make the OEM pre-commit SW-C ports to a plug-in
// population it cannot know).
//
// Two costs are compared over N logical connections:
//   * static footprint: SW-C ports the OEM must provision (counter);
//   * per-message routing cost (the mux pays id attach/strip + lookup;
//     dedicated ports pay nothing extra per message).
//
// Expected shape: per-message cost is close between the two (the id
// byte + hash lookup is cheap), while the static footprint is 2 vs 2N —
// the architectural win the paper claims.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace dacm::bench {
namespace {

support::Bytes SinkBinary() {
  return fes::AssembleOrDie(R"(
    .entry on_data h
    h: HALT
  )");
}

// Multiplexed: N sinks behind ONE Type II pair; messages are delivered to
// sink k via the PIRTE mux (id attached at V1-out, stripped at V1-in).
void BM_MuxSharedPair(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  BenchStack stack(/*max_plugins=*/128);  // sinks + the sender
  const auto sink = SinkBinary();
  for (int i = 0; i < connections; ++i) {
    stack.Install(MakePackage(
        "sink" + std::to_string(i), sink,
        {{0, "in", static_cast<std::uint8_t>(i),
          pirte::PluginPortDirection::kRequired}}));
  }
  // One sender whose port 1 targets sink k through the mux; k rotates via
  // reinstalled PLCs being too costly, so instead send directly through the
  // virtual port write path: emulate the sender side by a plug-in per
  // target is overkill — a single sender bound to the *last* sink exercises
  // the same attach/strip/lookup path with an N-entry demux table.
  stack.Install(MakePackage(
      "src", fes::MakeEchoPluginBinary(),
      {{0, "in", 200, pirte::PluginPortDirection::kRequired},
       {1, "out", 201, pirte::PluginPortDirection::kProvided}},
      {{0, pirte::PlcKind::kVirtual, 6, 0, "", 0},
       {1, pirte::PlcKind::kVirtualRemote, 1,
        static_cast<std::uint8_t>(connections - 1), "", 0}}));
  const support::Bytes payload{1, 2, 3, 4};
  for (auto _ : state) {
    (void)stack.ecu.ecu_rte().Write(stack.drv_sensor, payload);
    stack.simulator.Run();
  }
  state.counters["static_swc_ports"] = 2;  // the whole point
  state.counters["logical_connections"] = connections;
}
BENCHMARK(BM_MuxSharedPair)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Dedicated: one RTE port pair per logical connection, no PIRTE involved.
// This is what static AUTOSAR would need the OEM to provision up front.
void BM_DedicatedPairs(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  sim::Simulator simulator;
  sim::CanBus bus(simulator, 500'000);
  fes::Ecu ecu(simulator, bus, 1, "ECU1");
  rte::Rte& rte = ecu.ecu_rte();
  auto swc_a = *rte.AddSwc("A");
  auto swc_b = *rte.AddSwc("B");
  std::vector<rte::PortId> outs;
  for (int i = 0; i < connections; ++i) {
    rte::PortConfig out_config;
    out_config.name = "out" + std::to_string(i);
    out_config.direction = rte::PortDirection::kProvided;
    out_config.max_len = 64;
    auto out = *rte.AddPort(swc_a, std::move(out_config));
    rte::PortConfig in_config;
    in_config.name = "in" + std::to_string(i);
    in_config.direction = rte::PortDirection::kRequired;
    in_config.max_len = 64;
    auto in = *rte.AddPort(swc_b, std::move(in_config));
    (void)rte.ConnectLocal(out, in);
    outs.push_back(out);
  }
  (void)ecu.Start();
  simulator.Run();
  const support::Bytes payload{1, 2, 3, 4};
  std::size_t next = 0;
  for (auto _ : state) {
    (void)rte.Write(outs[next], payload);
    simulator.Run();
    next = (next + 1) % outs.size();
  }
  state.counters["static_swc_ports"] = 2.0 * connections;
  state.counters["logical_connections"] = connections;
}
BENCHMARK(BM_DedicatedPairs)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace dacm::bench

DACM_BENCH_MAIN();
