// FLEET — sharded deploy pipeline at fleet scale.
//
// The paper's trusted server is "a central point of intelligence" for
// every vehicle; the north-star scales it to fleet-wide OTA campaigns.
// This bench measures the DeployCampaign pipeline — per-vehicle
// compatibility checks, PIC/PLC/ECC generation, package assembly and
// batched pushes fanned over the shard worker pool, plus the simulated
// delivery and acknowledgement round — against:
//
//   * shard count (1/2/4/8): the scaling axis.  1 shard is the fully
//     synchronous baseline (no pool);
//   * fleet size (100/1k/10k scripted vehicles).
//
// Reported per case: deploys/s (items_per_second), and the mean / p99 of
// the worker-side per-vehicle processing time.  BM_FleetSyncDeploy is the
// pre-campaign reference — one interactive Deploy per vehicle with
// per-plug-in pushes — used to check that the single-shard campaign path
// is no slower than the classic loop.
//
// NOTE: real speedup needs real cores; on a single-CPU runner the >1-shard
// numbers measure sharding overhead, not parallelism.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "fes/fleet.hpp"
#include "support/crc.hpp"

namespace dacm::bench {
namespace {

// Work shape per vehicle: 4 plug-ins x 8 ports with ~12 KiB binaries, so
// a campaign push carries ~50 KiB of generated context + code per vehicle
// — enough server-side work (context gen, package assembly, CRC, batch
// serialization) that the single-threaded simulation/ack round is < 10% of
// a 1-shard campaign, leaving the worker pool real headroom to scale.
constexpr std::uint32_t kPlugins = 4;
constexpr std::uint32_t kPorts = 8;
constexpr std::uint32_t kBinaryPadding = 12288;

struct FleetBench {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMicrosecond};
  server::TrustedServer server;
  server::UserId user = server::UserId::Invalid();
  std::unique_ptr<fes::ScriptedFleet> fleet;

  FleetBench(std::size_t shards, std::size_t fleet_size)
      : server(network, "srv:443", server::ServerOptions{shards}) {
    (void)server.Start();
    (void)server.UploadVehicleModel(fes::MakeRpiTestbedConf());
    user = *server.CreateUser("bench");

    fes::ScriptedFleetOptions options;
    options.vehicle_count = fleet_size;
    fleet = std::make_unique<fes::ScriptedFleet>(simulator, network, server,
                                                 options);
    if (!fleet->BindAndConnect(user).ok()) std::abort();

    fes::SyntheticAppParams params;
    params.name = "campaign";
    params.vehicle_model = "rpi-testbed";
    params.plugin_count = kPlugins;
    params.ports_per_plugin = kPorts;
    params.target_ecu = 1;
    params.binary_padding = kBinaryPadding;
    (void)server.UploadApp(fes::MakeSyntheticApp(params));
  }

  void UninstallAll() {
    for (const std::string& vin : fleet->vins()) {
      (void)server.UninstallApp(user, vin, "campaign");
    }
    simulator.Run();
  }
};

void ReportLatencies(benchmark::State& state, std::vector<std::uint64_t>& ns) {
  if (ns.empty()) return;
  std::sort(ns.begin(), ns.end());
  const std::size_t p99 = std::min(ns.size() - 1, (ns.size() * 99) / 100);
  double sum = 0;
  for (std::uint64_t v : ns) sum += static_cast<double>(v);
  state.counters["vehicle_mean_us"] =
      sum / static_cast<double>(ns.size()) / 1000.0;
  state.counters["vehicle_p99_us"] = static_cast<double>(ns[p99]) / 1000.0;
}

// Campaign deploys/s: batched pushes over the worker pool, including the
// simulated delivery + acknowledgement round.
void BM_FleetCampaign(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto fleet_size = static_cast<std::size_t>(state.range(1));
  FleetBench bench(shards, fleet_size);
  std::vector<std::uint64_t> all_ns;
  for (auto _ : state) {
    auto report = bench.server.DeployCampaign(bench.user, "campaign",
                                              bench.fleet->vins());
    bench.simulator.Run();

    state.PauseTiming();
    auto last_state =
        bench.server.AppState(bench.fleet->vins().back(), "campaign");
    if (!report.ok() || report->rejected != 0 || !last_state.ok() ||
        *last_state != server::InstallState::kInstalled) {
      state.SkipWithError("campaign did not deploy the whole fleet");
      state.ResumeTiming();
      break;
    }
    all_ns.insert(all_ns.end(), report->per_vehicle_ns.begin(),
                  report->per_vehicle_ns.end());
    bench.UninstallAll();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fleet_size));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["fleet"] = static_cast<double>(fleet_size);
  ReportLatencies(state, all_ns);
}
BENCHMARK(BM_FleetCampaign)
    ->ArgNames({"shards", "fleet"})
    ->Args({1, 100})
    ->Args({2, 100})
    ->Args({4, 100})
    ->Args({8, 100})
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->Args({4, 1000})
    ->Args({8, 1000})
    ->Args({1, 10000})
    ->Args({4, 10000})
    ->UseRealTime()  // deploys/s must be wall time: the pool works while
                     // the calling thread's CPU clock idles in the barrier
    ->Unit(benchmark::kMillisecond);

// The classic interactive path: one Deploy per vehicle, one push per
// plug-in, all on the calling thread — the baseline the single-shard
// campaign must not fall behind.
void BM_FleetSyncDeploy(benchmark::State& state) {
  const auto fleet_size = static_cast<std::size_t>(state.range(0));
  FleetBench bench(/*shards=*/1, fleet_size);
  for (auto _ : state) {
    for (const std::string& vin : bench.fleet->vins()) {
      (void)bench.server.Deploy(bench.user, vin, "campaign");
    }
    bench.simulator.Run();

    state.PauseTiming();
    auto last_state =
        bench.server.AppState(bench.fleet->vins().back(), "campaign");
    if (!last_state.ok() || *last_state != server::InstallState::kInstalled) {
      state.SkipWithError("fleet did not fully deploy");
      state.ResumeTiming();
      break;
    }
    bench.UninstallAll();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fleet_size));
  state.counters["fleet"] = static_cast<double>(fleet_size);
  state.SetLabel(std::string("crc=") + support::Crc32Backend());
  state.counters["crc_is_hw"] =
      std::string(support::Crc32Backend()) != "slice8" ? 1.0 : 0.0;
}
BENCHMARK(BM_FleetSyncDeploy)
    ->ArgNames({"fleet"})
    ->Arg(100)
    ->Arg(1000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dacm::bench

DACM_BENCH_MAIN();
