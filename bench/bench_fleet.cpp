// FLEET — sharded deploy pipeline and campaign orchestration at scale.
//
// The paper's trusted server is "a central point of intelligence" for
// every vehicle; the north-star scales it to fleet-wide OTA campaigns.
// Four benchmark families:
//
//   * BM_FleetCampaign — the single-shot DeployCampaign pipeline
//     (per-vehicle compatibility checks, PIC/PLC/ECC generation, package
//     assembly, batched pushes over the shard worker pool) plus the
//     simulated delivery and acknowledgement round, against shard count x
//     fleet size.  1 shard is the fully synchronous baseline.
//   * BM_FleetDurableCampaign — the same rollout with the write-ahead
//     status DB and campaign journal enabled; bench_compare.py holds its
//     deploys/s against the memory-only campaign baseline.
//   * BM_FleetSyncDeploy — the pre-campaign reference: one interactive
//     Deploy per vehicle with per-plug-in pushes.
//   * BM_RecoveryReplay — restart cost: a cold server rebuilt from the
//     durable logs of a multi-campaign history (RecoverInstallDb +
//     journal replay), raw vs checkpointed; reports replay bytes/s,
//     time-to-serviceable and the log-to-live compaction ratio.
//   * BM_FleetFaultCampaign — the fault matrix: a retrying CampaignEngine
//     rollout over a seeded sim::FaultScenario (offline churn, WAN flaps,
//     transient nack cohorts).  Reported per case, and in the --json
//     output bench_all aggregates: waves-to-convergence, push retries per
//     vehicle, and the p99 sim-time to installed.
//   * BM_FleetMegaCampaign — the memory-scaling probe: one seeded
//     multi-model campaign (vehicles bound round-robin over N distinct
//     models, so the content-addressed package cache holds one batch per
//     cohort).  Reports bytes_per_vehicle (converged VmRSS delta over the
//     whole stack) and deploys_per_s; the CI bench-smoke job runs the
//     100k-VIN default under an RSS budget, and --mega=4,10000000,24
//     drives the ten-million-VIN configuration.
//
// CLI overrides (satellite of the campaign-engine PR; --lanes= of the
// parallel-lane PR):
//   --shards=1,4      comma list replacing the shard axis of every family
//   --fleet=1000      comma list replacing the fleet-size axis
//   --lanes=1,4       comma list replacing the simulator-lane axis of
//                     BM_FleetCampaign (conservative-window DES lanes)
//   --mega=1,100000,24  shards,fleet,models for BM_FleetMegaCampaign
// Without overrides the default matrix below runs (kept small enough for
// the CI bench-smoke job).
//
// NOTE: real speedup needs real cores; on a single-CPU runner the >1-shard
// and >1-lane numbers measure partitioning overhead, not parallelism.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fes/fleet.hpp"
#include "server/campaign.hpp"
#include "server/journal.hpp"
#include "sim/fault.hpp"
#include "support/crc.hpp"
#include "support/metrics.hpp"
#include "support/storage.hpp"

namespace dacm::bench {
namespace {

// Work shape per vehicle: 4 plug-ins x 8 ports with ~12 KiB binaries, so
// a campaign push carries ~50 KiB of generated context + code per vehicle
// — enough server-side work (context gen, package assembly, CRC, batch
// serialization) that the single-threaded simulation/ack round is < 10% of
// a 1-shard campaign, leaving the worker pool real headroom to scale.
constexpr std::uint32_t kPlugins = 4;
constexpr std::uint32_t kPorts = 8;
constexpr std::uint32_t kBinaryPadding = 12288;

std::string MegaModelName(std::size_t m) {
  return "rpi-mega-" + std::to_string(m);
}

/// Resident set from /proc/self/status, in bytes (0 off Linux).
std::size_t CurrentRssBytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[128];
  std::size_t rss = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      rss = std::strtoull(line + 6, nullptr, 10) * 1024;  // kB line
      break;
    }
  }
  std::fclose(status);
  return rss;
}

struct FleetBench {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMicrosecond};
  server::TrustedServer server;
  server::UserId user = server::UserId::Invalid();
  std::unique_ptr<fes::ScriptedFleet> fleet;

  FleetBench(std::size_t shards, std::size_t fleet_size,
             support::RecordSink* status_sink = nullptr,
             std::size_t model_count = 1, std::size_t sync_every = 0,
             std::size_t lanes = 1)
      : server(network, "srv:443",
               server::ServerOptions{shards, status_sink, sync_every}) {
    if (lanes > 1) {
      sim::LaneOptions lane_options;
      lane_options.lanes = lanes;
      // Window lookahead comes from the 1 us network-latency clamp.
      simulator.ConfigureLanes(lane_options);
    }
    (void)server.Start();
    fes::ScriptedFleetOptions options;
    options.vehicle_count = fleet_size;
    if (model_count <= 1) {
      (void)server.UploadVehicleModel(fes::MakeRpiTestbedConf());
    } else {
      // N distinct models (same hardware, distinct names) bound
      // round-robin, so the content-addressed cache keeps one install
      // batch per model cohort instead of one for the whole fleet.
      for (std::size_t m = 0; m < model_count; ++m) {
        server::VehicleModelConf conf = fes::MakeRpiTestbedConf();
        conf.model = MegaModelName(m);
        (void)server.UploadVehicleModel(std::move(conf));
        options.models.push_back(MegaModelName(m));
      }
    }
    user = *server.CreateUser("bench");

    fleet = std::make_unique<fes::ScriptedFleet>(simulator, network, server,
                                                 options);
    if (!fleet->BindAndConnect(user).ok()) std::abort();

    fes::SyntheticAppParams params;
    params.name = "campaign";
    params.vehicle_model =
        model_count <= 1 ? std::string("rpi-testbed") : MegaModelName(0);
    params.plugin_count = kPlugins;
    params.ports_per_plugin = kPorts;
    params.target_ecu = 1;
    params.binary_padding = kBinaryPadding;
    server::App app = fes::MakeSyntheticApp(params);
    for (std::size_t m = 1; m < model_count; ++m) {
      server::SwConf conf = app.confs.front();
      conf.vehicle_model = MegaModelName(m);
      app.confs.push_back(std::move(conf));
    }
    (void)server.UploadApp(std::move(app));
  }

  void UninstallAll() {
    for (const std::string& vin : fleet->vins()) {
      (void)server.UninstallApp(user, vin, "campaign");
    }
    simulator.Run();
  }
};

/// Quantile counters from a log2 histogram: `<prefix>_p50_<unit>` /
/// `_p95_` / `_p99_` / `_max_`, each scaled by `scale` (e.g. 1e-3 for
/// ns -> us).  Replaces the old sort-the-whole-vector p99: the histogram
/// accumulates in O(1) per sample with no retained per-sample storage,
/// so million-vehicle matrices report tails without the O(n log n) sort
/// or the vector's memory.
void ReportQuantiles(benchmark::State& state, const std::string& prefix,
                     const std::string& unit, const support::Histogram& hist,
                     double scale) {
  if (hist.Count() == 0) return;
  state.counters[prefix + "_p50_" + unit] = hist.Quantile(0.50) * scale;
  state.counters[prefix + "_p95_" + unit] = hist.Quantile(0.95) * scale;
  state.counters[prefix + "_p99_" + unit] = hist.Quantile(0.99) * scale;
  state.counters[prefix + "_max_" + unit] =
      static_cast<double>(hist.Max()) * scale;
}

void ReportLatencies(benchmark::State& state, const support::Histogram& ns) {
  if (ns.Count() == 0) return;
  state.counters["vehicle_mean_us"] = ns.Mean() / 1000.0;
  ReportQuantiles(state, "vehicle", "us", ns, 1.0 / 1000.0);
}

// Campaign deploys/s: batched pushes over the worker pool, including the
// simulated delivery + acknowledgement round.
void BM_FleetCampaign(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto fleet_size = static_cast<std::size_t>(state.range(1));
  const auto lanes = static_cast<std::size_t>(state.range(2));
  FleetBench bench(shards, fleet_size, nullptr, /*model_count=*/1,
                   /*sync_every=*/0, lanes);
  support::Histogram vehicle_ns;
  // Registry histograms fed by the instrumented pipeline; reset so the
  // quantiles cover exactly this benchmark's iterations.
  auto& metrics = support::Metrics::Instance();
  support::Histogram& ack_flush_nanos =
      metrics.GetHistogram("dacm_ack_flush_nanos");
  support::Histogram& roundtrip_us =
      metrics.GetHistogram("dacm_deploy_roundtrip_us");
  support::Histogram& barrier_stall_nanos =
      metrics.GetHistogram("dacm_sim_barrier_stall_nanos");
  ack_flush_nanos.Reset();
  roundtrip_us.Reset();
  barrier_stall_nanos.Reset();
  // Amdahl bookkeeping.  The campaign phase fans out over the shard pool;
  // the simulation phase splits into the truly serial part (event-loop
  // deliveries, vehicle handlers, ack routing on the simulation thread)
  // and the ack-inbox flush, which runs one-worker-per-shard since PR 4
  // and therefore scales with the pool.  serial_sim_fraction reports only
  // the former — the term that caps shard scaling and that PR 5's
  // event-kernel rebuild exists to push down.
  std::uint64_t campaign_ns = 0, sim_ns = 0, flush_ns = 0;
  for (auto _ : state) {
    const std::uint64_t flush_before = bench.server.ack_flush_nanos();
    const auto t0 = std::chrono::steady_clock::now();
    auto report = bench.server.DeployCampaign(bench.user, "campaign",
                                              bench.fleet->vins());
    const auto t1 = std::chrono::steady_clock::now();
    bench.simulator.Run();
    const auto t2 = std::chrono::steady_clock::now();
    campaign_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    sim_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count());
    flush_ns += bench.server.ack_flush_nanos() - flush_before;

    state.PauseTiming();
    auto last_state =
        bench.server.AppState(bench.fleet->vins().back(), "campaign");
    if (!report.ok() || report->rejected != 0 || !last_state.ok() ||
        *last_state != server::InstallState::kInstalled) {
      state.SkipWithError("campaign did not deploy the whole fleet");
      state.ResumeTiming();
      break;
    }
    for (std::uint64_t v : report->per_vehicle_ns) vehicle_ns.Observe(v);
    bench.UninstallAll();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fleet_size));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["fleet"] = static_cast<double>(fleet_size);
  state.counters["lanes"] = static_cast<double>(lanes);
  if (campaign_ns + sim_ns > 0) {
    const auto total = static_cast<double>(campaign_ns + sim_ns);
    const std::uint64_t serial = sim_ns > flush_ns ? sim_ns - flush_ns : 0;
    state.counters["serial_sim_fraction"] = static_cast<double>(serial) / total;
    state.counters["ack_flush_fraction"] =
        static_cast<double>(flush_ns) / total;
    state.counters["sim_phase_fraction"] = static_cast<double>(sim_ns) / total;
  }
  ReportLatencies(state, vehicle_ns);
  // Per-flush wall time of the parallel ack-inbox drain, and the
  // push -> converged-ack round trip in sim time.
  ReportQuantiles(state, "ack_flush", "us", ack_flush_nanos, 1.0 / 1000.0);
  ReportQuantiles(state, "roundtrip", "ms", roundtrip_us, 1.0 / 1000.0);
  // Per-(lane, window) wall time a finished lane waits at the merge
  // barrier for its siblings — the lane engine's load-imbalance cost
  // (empty at lanes=1, which runs no barriers).
  ReportQuantiles(state, "barrier_stall", "us", barrier_stall_nanos,
                  1.0 / 1000.0);
}

// The same rollout with the crash-consistent persistence layer enabled:
// every InstalledApp mutation writes a status paragraph ahead of the
// visible transition, and a CampaignEngine journals its wave ticks.  The
// acceptance bar for the durability PR is <= 5% off the memory-only
// BM_FleetCampaign deploys/s at the same shape (bench_compare.py tracks
// exactly that pairing).  wal_bytes_per_vehicle reports the durable
// footprint of one converged deploy.
void BM_FleetDurableCampaign(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto fleet_size = static_cast<std::size_t>(state.range(1));
  support::MemorySink status_log;
  support::MemorySink journal_log;
  // Sync every 64 status frames: the power-loss durability cadence, and
  // the sample source for the WAL fsync histogram (a MemorySink Sync is
  // nearly free, so this prices the framing/locking around it, not disk).
  FleetBench bench(shards, fleet_size, &status_log, /*model_count=*/1,
                   /*sync_every=*/64);
  server::CampaignEngine engine(bench.simulator, bench.server);
  server::CampaignJournal journal(journal_log);
  engine.AttachJournal(&journal);
  support::Histogram& fsync_nanos =
      support::Metrics::Instance().GetHistogram("dacm_wal_fsync_nanos");
  fsync_nanos.Reset();
  std::uint64_t wal_bytes = 0;
  for (auto _ : state) {
    auto id = engine.StartDeploy(bench.user, "campaign", bench.fleet->vins());
    bench.simulator.Run();

    state.PauseTiming();
    if (!id.ok() || !engine.Finished(*id) ||
        engine.Snapshot(*id)->status != server::CampaignStatus::kConverged) {
      state.SkipWithError("durable campaign did not converge");
      state.ResumeTiming();
      break;
    }
    (void)engine.Forget(*id);
    wal_bytes += status_log.bytes().size() + journal_log.bytes().size();
    bench.UninstallAll();
    // The uninstall paragraphs are teardown, not campaign cost.
    status_log.Clear();
    journal_log.Clear();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fleet_size));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["fleet"] = static_cast<double>(fleet_size);
  if (state.iterations() > 0) {
    state.counters["wal_bytes_per_vehicle"] =
        static_cast<double>(wal_bytes) /
        static_cast<double>(state.iterations() *
                            static_cast<std::int64_t>(fleet_size));
  }
  ReportQuantiles(state, "wal_fsync", "us", fsync_nanos, 1.0 / 1000.0);
}

// The classic interactive path: one Deploy per vehicle, one push per
// plug-in, all on the calling thread — the baseline the single-shard
// campaign must not fall behind.
void BM_FleetSyncDeploy(benchmark::State& state) {
  const auto fleet_size = static_cast<std::size_t>(state.range(0));
  FleetBench bench(/*shards=*/1, fleet_size);
  for (auto _ : state) {
    for (const std::string& vin : bench.fleet->vins()) {
      (void)bench.server.Deploy(bench.user, vin, "campaign");
    }
    bench.simulator.Run();

    state.PauseTiming();
    auto last_state =
        bench.server.AppState(bench.fleet->vins().back(), "campaign");
    if (!last_state.ok() || *last_state != server::InstallState::kInstalled) {
      state.SkipWithError("fleet did not fully deploy");
      state.ResumeTiming();
      break;
    }
    bench.UninstallAll();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fleet_size));
  state.counters["fleet"] = static_cast<double>(fleet_size);
  state.SetLabel(std::string("crc=") + support::Crc32Backend());
  state.counters["crc_is_hw"] =
      std::string(support::Crc32Backend()) != "slice8" ? 1.0 : 0.0;
}

// Recovery replay: time-to-serviceable from the durable logs — the cost
// a restarted server pays before it can push again.  Setup runs five
// consecutive campaigns (four deploy/uninstall rounds plus a final
// converged deploy), so the raw log carries realistic multi-campaign
// history; checkpoint=1 folds it through Compact() /
// CompactJournal() first, making the 0/1 pair measure exactly what
// checkpointing buys at restart.  Bytes/s is replayed log bytes; the
// log_to_live_ratio counter is the 2x compaction guard bench_compare
// tracks.
void BM_RecoveryReplay(benchmark::State& state) {
  const auto fleet_size = static_cast<std::size_t>(state.range(0));
  const bool checkpoint = state.range(1) != 0;
  support::MemorySink status_log;
  support::MemorySink journal_log;
  FleetBench bench(/*shards=*/4, fleet_size, &status_log);
  server::CampaignEngine engine(bench.simulator, bench.server);
  server::CampaignJournal journal(journal_log);
  engine.AttachJournal(&journal);
  for (int round = 0; round < 5; ++round) {
    auto id = engine.StartDeploy(bench.user, "campaign", bench.fleet->vins());
    bench.simulator.Run();
    if (!id.ok() || !engine.Finished(*id) ||
        engine.Snapshot(*id)->status != server::CampaignStatus::kConverged) {
      state.SkipWithError("setup campaign did not converge");
      return;
    }
    if (round < 4) {
      (void)engine.Forget(*id);
      bench.UninstallAll();
    }
  }
  if (checkpoint &&
      (!bench.server.Compact().ok() || !engine.CompactJournal().ok())) {
    state.SkipWithError("compaction failed");
    return;
  }
  const support::Bytes status_image = status_log.bytes();
  const support::Bytes journal_image = journal_log.bytes();
  auto replayed = server::StatusDb::ReplayImage(status_image);
  if (!replayed.ok()) {
    state.SkipWithError("status log replay failed");
    return;
  }

  for (auto _ : state) {
    // A cold process: fresh simulator, fresh server, nothing uploaded.
    sim::Simulator simulator;
    sim::Network network{simulator, sim::kMicrosecond};
    server::ServerOptions options;
    options.shard_count = 4;
    server::TrustedServer fresh(network, "srv-recover:1", options);
    if (!fresh.RecoverInstallDb(status_image).ok()) {
      state.SkipWithError("RecoverInstallDb failed");
      break;
    }
    server::CampaignEngine fresh_engine(simulator, fresh);
    if (!fresh_engine.Recover(journal_image).ok()) {
      state.SkipWithError("journal recovery failed");
      break;
    }
    benchmark::DoNotOptimize(fresh.stats().deploys_ok);
  }
  const auto log_bytes =
      static_cast<double>(status_image.size() + journal_image.size());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(log_bytes));
  state.counters["fleet"] = static_cast<double>(fleet_size);
  state.counters["checkpoint"] = checkpoint ? 1.0 : 0.0;
  state.counters["log_bytes"] = log_bytes;
  state.counters["live_bytes"] = static_cast<double>(replayed->live_bytes);
  state.counters["log_to_live_ratio"] =
      static_cast<double>(status_image.size()) /
      static_cast<double>(replayed->live_bytes);
  // elapsed / (iterations / 1e3) = mean milliseconds per recovery.
  state.counters["time_to_serviceable_ms"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e3,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

// Fault matrix: a retrying multi-wave campaign converging over a seeded
// fault scenario.  Wall time measures the orchestration machinery (wave
// pushes, re-pushes, parallel ack flushes); the sim-time counters measure
// convergence quality under the injected fault severity.
void BM_FleetFaultCampaign(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto fleet_size = static_cast<std::size_t>(state.range(1));
  const double churn = static_cast<double>(state.range(2)) / 100.0;
  const auto flaps = static_cast<std::size_t>(state.range(3));
  const double nack = static_cast<double>(state.range(4)) / 100.0;

  FleetBench bench(shards, fleet_size);
  server::CampaignEngine engine(bench.simulator, bench.server);

  server::RetryPolicy policy;
  policy.max_waves = 10;
  policy.settle_delay = 50 * sim::kMillisecond;
  policy.initial_backoff = 250 * sim::kMillisecond;
  policy.max_backoff = 2 * sim::kSecond;
  policy.abort_nack_fraction = 2.0;  // transients heal; never abort

  std::uint64_t waves = 0, pushes = 0, repushes = 0;
  support::Histogram tti_us;
  for (auto _ : state) {
    sim::FaultScenario faults(bench.simulator, bench.network, /*seed=*/0xFA417);
    if (churn > 0) {
      // Horizon 0: the whole cohort is dark when wave 1 pushes (this
      // bench's 1 us link makes the deploy round trip shorter than any
      // spread-out churn window) and trickles back during retry waves.
      faults.AddOfflineChurn(*bench.fleet, churn, /*horizon=*/0,
                             100 * sim::kMillisecond, 400 * sim::kMillisecond);
    }
    if (flaps > 0) {
      faults.AddRandomLinkFlaps(flaps, 600 * sim::kMillisecond,
                                20 * sim::kMillisecond, 80 * sim::kMillisecond);
    }
    if (nack > 0) {
      faults.AddNackCohort(*bench.fleet, nack, 500 * sim::kMillisecond);
    }
    const std::uint64_t repushes_before = bench.server.stats().repushes;
    auto id = engine.StartDeploy(bench.user, "campaign", bench.fleet->vins(),
                                 policy);
    if (!id.ok()) {
      state.SkipWithError("campaign failed to start");
      break;
    }
    bench.simulator.Run();

    state.PauseTiming();
    auto snapshot = *engine.Snapshot(*id);
    if (snapshot.status != server::CampaignStatus::kConverged) {
      state.SkipWithError("faulted campaign did not converge");
      state.ResumeTiming();
      break;
    }
    waves += snapshot.waves_pushed;
    pushes += snapshot.total_pushes;
    repushes += bench.server.stats().repushes - repushes_before;
    const auto times_to_done = engine.TimesToDone(*id);
    for (std::uint64_t t : *times_to_done) tti_us.Observe(t);
    // Reset through a (untimed) rollback campaign — the uninstall-batch
    // path at fleet scale.
    auto rollback = engine.StartRollback(bench.user, "campaign",
                                         bench.fleet->vins(), policy);
    if (rollback.ok()) bench.simulator.Run();
    if (!rollback.ok() ||
        engine.Snapshot(*rollback)->status !=
            server::CampaignStatus::kConverged) {
      state.SkipWithError("rollback campaign did not converge");
      state.ResumeTiming();
      break;
    }
    // Counters harvested; drop the row tables so the engine's memory
    // stays flat across benchmark iterations.
    (void)engine.Forget(*id);
    (void)engine.Forget(*rollback);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fleet_size));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["fleet"] = static_cast<double>(fleet_size);
  state.counters["churn_pct"] = static_cast<double>(state.range(2));
  state.counters["link_flaps"] = static_cast<double>(flaps);
  state.counters["nack_pct"] = static_cast<double>(state.range(4));
  const auto iterations = static_cast<double>(std::max<std::int64_t>(
      state.iterations(), 1));
  state.counters["waves_to_convergence"] = static_cast<double>(waves) / iterations;
  state.counters["pushes_per_vehicle"] =
      static_cast<double>(pushes) /
      (iterations * static_cast<double>(fleet_size));
  state.counters["repushes_per_iter"] = static_cast<double>(repushes) / iterations;
  if (tti_us.Count() != 0) {
    // Sim-time, not wall.  The p99 key predates the histogram rework and
    // is kept verbatim for baseline comparability.
    state.counters["p99_time_to_installed_ms"] = tti_us.Quantile(0.99) / 1000.0;
    ReportQuantiles(state, "time_to_installed", "ms", tti_us, 1.0 / 1000.0);
  }
}

// Memory-scaling probe: one seeded multi-model campaign at a fleet size
// where per-vehicle footprint, not throughput, is the question.  The SoA
// fleet store keeps each VIN as interned arena chars + packed columns,
// and the content-addressed cache generates/serializes one install batch
// per (model, app, version, id-layout) cohort — every vehicle in a
// cohort shares the same refcounted envelope, and convergence drops the
// payload refs so steady-state memory is O(models), not O(fleet).
//
//   bytes_per_vehicle    converged VmRSS delta across the whole stack
//                        (server rows + cache + fleet endpoints + sim
//                        machinery) divided by the fleet size
//   deploys_per_s        end-to-end campaign rate, wall time, including
//                        the simulated delivery + acknowledgement round
//   cache_entries        distinct batches generated (== model cohorts)
//   cache_live_payloads  payloads still pinned after convergence (0 when
//                        every row released its envelope)
void BM_FleetMegaCampaign(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto fleet_size = static_cast<std::size_t>(state.range(1));
  const auto models = static_cast<std::size_t>(state.range(2));
  const std::size_t rss_before = CurrentRssBytes();
  FleetBench bench(shards, fleet_size, nullptr, models);
  std::size_t rss_converged = 0;
  std::size_t cache_entries = 0, cache_live = 0;
  for (auto _ : state) {
    auto report = bench.server.DeployCampaign(bench.user, "campaign",
                                              bench.fleet->vins());
    bench.simulator.Run();

    state.PauseTiming();
    auto last_state =
        bench.server.AppState(bench.fleet->vins().back(), "campaign");
    if (!report.ok() || report->rejected != 0 || !last_state.ok() ||
        *last_state != server::InstallState::kInstalled) {
      state.SkipWithError("mega campaign did not deploy the whole fleet");
      state.ResumeTiming();
      break;
    }
    rss_converged = std::max(rss_converged, CurrentRssBytes());
    cache_entries = bench.server.package_cache().entries();
    cache_live = bench.server.package_cache().live_payloads();
    bench.UninstallAll();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fleet_size));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["fleet"] = static_cast<double>(fleet_size);
  state.counters["models"] = static_cast<double>(models);
  state.counters["deploys_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(fleet_size),
      benchmark::Counter::kIsRate);
  if (rss_converged > rss_before) {
    state.counters["bytes_per_vehicle"] =
        static_cast<double>(rss_converged - rss_before) /
        static_cast<double>(fleet_size);
  }
  state.counters["cache_entries"] = static_cast<double>(cache_entries);
  state.counters["cache_live_payloads"] = static_cast<double>(cache_live);
}

// --- registration (dynamic: the satellite --shards=/--fleet= overrides) ------

/// Parses a comma list of positive integers; empty on any malformed,
/// non-positive or out-of-range token (the caller rejects empty lists).
std::vector<std::int64_t> ParseList(const std::string& csv) {
  std::vector<std::int64_t> values;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!token.empty()) {
      errno = 0;
      char* end = nullptr;
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (errno != 0 || end != token.c_str() + token.size() || value <= 0 ||
          value > 10'000'000) {
        return {};
      }
      values.push_back(value);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

void RegisterFleetBenchmarks(const std::vector<std::int64_t>& shard_list,
                             const std::vector<std::int64_t>& fleet_list,
                             const std::vector<std::int64_t>& lane_list,
                             bool overridden) {
  auto* campaign =
      benchmark::RegisterBenchmark("BM_FleetCampaign", BM_FleetCampaign)
          ->ArgNames({"shards", "fleet", "lanes"})
          ->UseRealTime()  // deploys/s must be wall time: the pool works
                           // while the caller's CPU clock idles in the barrier
          ->Unit(benchmark::kMillisecond);
  if (overridden) {
    for (std::int64_t fleet : fleet_list) {
      for (std::int64_t shards : shard_list) {
        for (std::int64_t lanes : lane_list) {
          campaign->Args({shards, fleet, lanes});
        }
      }
    }
  } else {
    // The legacy default matrix (10k fleets only on the interesting axes)
    // runs on the serial engine…
    for (std::int64_t shards : {1, 2, 4, 8}) campaign->Args({shards, 100, 1});
    for (std::int64_t shards : {1, 2, 4, 8}) campaign->Args({shards, 1000, 1});
    campaign->Args({1, 10000, 1})->Args({4, 10000, 1});
    // …plus the shards x lanes scaling rows of the parallel-lane PR.
    for (std::int64_t shards : {1, 4}) {
      for (std::int64_t lanes : {2, 4}) campaign->Args({shards, 1000, lanes});
    }
  }

  auto* durable = benchmark::RegisterBenchmark("BM_FleetDurableCampaign",
                                               BM_FleetDurableCampaign)
                      ->ArgNames({"shards", "fleet"})
                      ->UseRealTime()
                      ->Unit(benchmark::kMillisecond);
  if (overridden) {
    for (std::int64_t fleet : fleet_list) {
      for (std::int64_t shards : shard_list) durable->Args({shards, fleet});
    }
  } else {
    // Only the shapes bench_compare tracks against the memory-only
    // campaign — the durability delta, not another full matrix.
    durable->Args({1, 1000})->Args({4, 1000});
  }

  auto* sync = benchmark::RegisterBenchmark("BM_FleetSyncDeploy",
                                            BM_FleetSyncDeploy)
                   ->ArgNames({"fleet"})
                   ->UseRealTime()
                   ->Unit(benchmark::kMillisecond);
  if (overridden) {
    for (std::int64_t fleet : fleet_list) sync->Arg(fleet);
  } else {
    sync->Arg(100)->Arg(1000);
  }

  auto* recovery =
      benchmark::RegisterBenchmark("BM_RecoveryReplay", BM_RecoveryReplay)
          ->ArgNames({"fleet", "checkpoint"})
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
  const std::vector<std::int64_t> recovery_fleets =
      overridden ? fleet_list : std::vector<std::int64_t>{1000, 10000};
  for (std::int64_t fleet : recovery_fleets) {
    recovery->Args({fleet, 0})->Args({fleet, 1});
  }

  auto* faulted =
      benchmark::RegisterBenchmark("BM_FleetFaultCampaign", BM_FleetFaultCampaign)
          ->ArgNames({"shards", "fleet", "churn_pct", "flaps", "nack_pct"})
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
  const std::vector<std::int64_t> fault_shards =
      overridden ? shard_list : std::vector<std::int64_t>{1, 4};
  const std::vector<std::int64_t> fault_fleets =
      overridden ? fleet_list : std::vector<std::int64_t>{1000};
  for (std::int64_t fleet : fault_fleets) {
    for (std::int64_t shards : fault_shards) {
      faulted->Args({shards, fleet, 20, 2, 0});   // churn + flaps
      faulted->Args({shards, fleet, 0, 0, 30});   // transient nack cohort
      faulted->Args({shards, fleet, 20, 2, 10});  // the full matrix
    }
  }
}

void RegisterMegaBenchmark(const std::vector<std::int64_t>& mega) {
  // One measured campaign: the fleet build is untimed setup, and the
  // memory question is answered by a single converged rollout (repeat
  // iterations would only re-measure the same resident set).
  benchmark::RegisterBenchmark("BM_FleetMegaCampaign", BM_FleetMegaCampaign)
      ->ArgNames({"shards", "fleet", "models"})
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1)
      ->Args({mega[0], mega[1], mega[2]});
}

}  // namespace
}  // namespace dacm::bench

int main(int argc, char** argv) {
  std::vector<std::int64_t> shards = {1, 2, 4, 8};
  std::vector<std::int64_t> fleets = {100, 1000, 10000};
  std::vector<std::int64_t> lanes = {1};
  std::vector<std::int64_t> mega = {1, 100000, 24};  // CI bench-smoke shape
  bool overridden = false;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      shards = dacm::bench::ParseList(arg.substr(sizeof("--shards=") - 1));
      overridden = true;
    } else if (arg.rfind("--fleet=", 0) == 0) {
      fleets = dacm::bench::ParseList(arg.substr(sizeof("--fleet=") - 1));
      overridden = true;
    } else if (arg.rfind("--lanes=", 0) == 0) {
      lanes = dacm::bench::ParseList(arg.substr(sizeof("--lanes=") - 1));
      overridden = true;
    } else if (arg.rfind("--mega=", 0) == 0) {
      mega = dacm::bench::ParseList(arg.substr(sizeof("--mega=") - 1));
      if (mega.size() != 3) mega.clear();
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (shards.empty() || fleets.empty() || lanes.empty()) {
    std::fprintf(
        stderr,
        "--shards=/--fleet=/--lanes= need a comma list of positive integers\n");
    return 1;
  }
  if (mega.empty()) {
    std::fprintf(stderr, "--mega= needs shards,fleet,models\n");
    return 1;
  }
  dacm::bench::RegisterFleetBenchmarks(shards, fleets, lanes, overridden);
  dacm::bench::RegisterMegaBenchmark(mega);
  return dacm::bench::BenchMain(static_cast<int>(passthrough.size()),
                                passthrough.data());
}
