// FIG3-A — the paper's example application end to end (Figure 3, §4).
//
// Regenerates the behaviour of the prototype demo: user-triggered install
// of the COM+OP app over server -> ECM -> ECU2, then phone-to-motor
// control traffic.  Reports both wall-clock cost (how expensive the whole
// machinery is to simulate) and *simulated* latencies (what a vehicle
// would observe: network latency + CAN frame times + task dispatch).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "fes/testbed.hpp"

namespace dacm::bench {
namespace {

// Full federation bring-up + deployment of the remote-car app.
void BM_DeployRemoteCar(benchmark::State& state) {
  double sim_ms_total = 0;
  for (auto _ : state) {
    auto testbed = fes::Figure3Testbed::Create();
    if (!testbed.ok() || !(*testbed)->SetUp().ok()) {
      state.SkipWithError("testbed bring-up failed");
      return;
    }
    const sim::SimTime start = (*testbed)->simulator().Now();
    if (!(*testbed)->DeployRemoteCar().ok()) {
      state.SkipWithError("deployment failed");
      return;
    }
    sim_ms_total += static_cast<double>((*testbed)->simulator().Now() - start) /
                    sim::kMillisecond;
  }
  state.counters["sim_install_ms"] =
      benchmark::Counter(sim_ms_total / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DeployRemoteCar)->Unit(benchmark::kMillisecond);

// One phone command, phone -> COM -> Type II/CAN -> OP -> motor control.
void BM_WheelsCommandRoundTrip(benchmark::State& state) {
  auto testbed = fes::Figure3Testbed::Create();
  if (!testbed.ok() || !(*testbed)->SetUp().ok() ||
      !(*testbed)->DeployRemoteCar().ok()) {
    state.SkipWithError("deployment failed");
    return;
  }
  double sim_ms_total = 0;
  std::int32_t angle = 0;
  for (auto _ : state) {
    // Stay inside the OEM guard's [-45, 45] wheel range.
    angle = (angle + 1) % 45;
    auto latency = (*testbed)->SendWheels(angle);
    if (!latency.ok()) {
      state.SkipWithError("command lost");
      return;
    }
    sim_ms_total += static_cast<double>(*latency) / sim::kMillisecond;
  }
  state.counters["sim_latency_ms"] =
      benchmark::Counter(sim_ms_total / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WheelsCommandRoundTrip)->Unit(benchmark::kMicrosecond);

// Same round trip at different simulated WAN latencies: the in-vehicle
// share of the end-to-end latency is what the architecture adds.
void BM_CommandLatencyVsWan(benchmark::State& state) {
  fes::Figure3Options options;
  options.network_latency =
      static_cast<sim::SimTime>(state.range(0)) * sim::kMillisecond;
  auto testbed = fes::Figure3Testbed::Create(options);
  if (!testbed.ok() || !(*testbed)->SetUp().ok() ||
      !(*testbed)->DeployRemoteCar().ok()) {
    state.SkipWithError("deployment failed");
    return;
  }
  double sim_ms_total = 0;
  std::int32_t speed = 0;
  for (auto _ : state) {
    // Stay inside the OEM guard's [0, 100] speed range (values outside it
    // are dropped by design — see test_guard).
    speed = (speed + 1) % 100;
    auto latency = (*testbed)->SendSpeed(speed);
    if (!latency.ok()) {
      state.SkipWithError("command lost");
      return;
    }
    sim_ms_total += static_cast<double>(*latency) / sim::kMillisecond;
  }
  const double mean = sim_ms_total / static_cast<double>(state.iterations());
  state.counters["sim_latency_ms"] = benchmark::Counter(mean);
  state.counters["in_vehicle_ms"] =
      benchmark::Counter(mean - static_cast<double>(state.range(0)));
  state.counters["wan_ms"] = benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_CommandLatencyVsWan)->Arg(0)->Arg(5)->Arg(20)->Arg(50);

}  // namespace
}  // namespace dacm::bench

DACM_BENCH_MAIN();
