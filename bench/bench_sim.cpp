// SIM — the discrete-event kernel itself.
//
// PR 5 rebuilt the Simulator's pending-event store as a hierarchical timer
// wheel with pooled nodes and inline callback storage (sim/event_queue.hpp)
// and made sim::Network delivery zero-copy.  These benchmarks put numbers
// on that rebuild:
//
//   * BM_Wheel* / BM_Legacy* pairs — identical deterministic schedules
//     driven through the production kernel and through the exact core it
//     replaced (std::priority_queue<Event> + std::function callbacks,
//     reimplemented below as the baseline).  Three schedule shapes:
//       - NearMonotonic: mixed latencies/alarm periods, the fleet pattern;
//       - SameTimestampStorm: N events at one timestamp (ack storms);
//       - TimerChurn: a self-rescheduling alarm chain (OS tick pattern).
//   * BM_StagedSendDrain — off-thread Send()s staged into the pooled FIFO
//     and folded in at the drain barrier: the worker->simulator handoff
//     rate that bounds how fast sharded campaign pushes can be absorbed.
//   * BM_LaneWindowedFire — the parallel-lane engine (PR 10): a
//     self-rescheduling load spread over N lanes executed in conservative
//     time windows with merge barriers.  The lanes=1 row is the serial
//     engine; the delta against it is the pure lane-machinery overhead
//     (on a single-CPU runner, its upper bound).  `--lanes=1,2,4` replaces
//     the lane axis.
//
// The acceptance bar for the PR: >= 2x schedule+fire throughput for the
// wheel rows over their legacy twins on the CI-class runner.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/shared_bytes.hpp"

namespace dacm::bench {
namespace {

// The PR-4-era event core, verbatim: a binary-heap priority queue of
// std::function events with a FIFO sequence tie-break.  Kept here (not in
// src/) purely as the measurement baseline.
class LegacyKernel {
 public:
  using Callback = std::function<void()>;

  sim::SimTime Now() const { return now_; }

  void ScheduleAt(sim::SimTime at, Callback fn) {
    if (at < now_) at = now_;
    queue_.push(Event{at, next_seq_++, std::move(fn)});
  }
  void ScheduleAfter(sim::SimTime delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  std::size_t Run() {
    std::size_t processed = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.at;
      ev.fn();
      ++processed;
    }
    return processed;
  }

 private:
  struct Event {
    sim::SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  sim::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Deterministic delay stream shared by both kernels: the near-monotonic
/// mixture the fleet pipeline produces (dominant short network latencies,
/// alarm periods, an occasional long backoff).
class DelayStream {
 public:
  sim::SimTime Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t draw = state_ >> 33;
    switch (draw & 7) {
      case 0: return 0;                                  // same-timestamp
      case 1: return 1 + (draw % 64);                    // sub-slot jitter
      case 2: return sim::kMillisecond;                  // OS tick
      case 3: return 100 * sim::kMillisecond;            // alarm period
      case 4: return sim::kSecond + (draw % 1024);       // backoff
      default: return 20 * sim::kMillisecond + (draw % 512);  // WAN latency
    }
  }

 private:
  std::uint64_t state_ = 0x51D0C0DE;
};

template <typename Kernel>
void ScheduleFireNearMonotonic(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Kernel kernel;
  DelayStream delays;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      kernel.ScheduleAfter(delays.Next(), [&fired]() { ++fired; });
    }
    kernel.Run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}

template <typename Kernel>
void SameTimestampStorm(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Kernel kernel;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    const sim::SimTime at = kernel.Now() + sim::kMillisecond;
    for (std::size_t i = 0; i < batch; ++i) {
      kernel.ScheduleAt(at, [&fired]() { ++fired; });
    }
    kernel.Run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}

template <typename Kernel>
void TimerChurn(benchmark::State& state) {
  const auto chain = static_cast<std::size_t>(state.range(0));
  Kernel kernel;
  std::size_t remaining = 0;
  // A periodic alarm rescheduling itself: one live event at a time, the
  // depth-1 pattern the OS tick and watchdog produce.  The ticker is a
  // plain 16-byte callable, so each kernel erases it natively (the legacy
  // core *must* wrap it in std::function — that was the point of the
  // inline-callback rework).
  struct Ticker {
    Kernel* kernel;
    std::size_t* remaining;
    void operator()() const {
      if (--*remaining > 0) kernel->ScheduleAfter(sim::kMillisecond, *this);
    }
  };
  const Ticker tick{&kernel, &remaining};
  for (auto _ : state) {
    remaining = chain;
    kernel.ScheduleAfter(sim::kMillisecond, tick);
    kernel.Run();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(chain));
}

void BM_WheelScheduleFire(benchmark::State& state) {
  ScheduleFireNearMonotonic<sim::Simulator>(state);
}
void BM_LegacyScheduleFire(benchmark::State& state) {
  ScheduleFireNearMonotonic<LegacyKernel>(state);
}
void BM_WheelStorm(benchmark::State& state) {
  SameTimestampStorm<sim::Simulator>(state);
}
void BM_LegacyStorm(benchmark::State& state) {
  SameTimestampStorm<LegacyKernel>(state);
}
void BM_WheelTimerChurn(benchmark::State& state) {
  TimerChurn<sim::Simulator>(state);
}
void BM_LegacyTimerChurn(benchmark::State& state) {
  TimerChurn<LegacyKernel>(state);
}

BENCHMARK(BM_WheelScheduleFire)->Arg(1024)->Arg(16384);
BENCHMARK(BM_LegacyScheduleFire)->Arg(1024)->Arg(16384);
BENCHMARK(BM_WheelStorm)->Arg(4096);
BENCHMARK(BM_LegacyStorm)->Arg(4096);
BENCHMARK(BM_WheelTimerChurn)->Arg(8192);
BENCHMARK(BM_LegacyTimerChurn)->Arg(8192);

// Off-thread staged sends drained at the barrier: a worker thread stages a
// burst (the sharded campaign push pattern), the simulation thread folds
// it in and delivers.  Measures the full pooled-FIFO handoff + zero-copy
// delivery path, not just the queue.
void BM_StagedSendDrain(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  sim::Simulator simulator;
  sim::Network network(simulator, sim::kMicrosecond);
  std::shared_ptr<sim::NetPeer> server_side;
  if (!network.Listen("srv", [&](std::shared_ptr<sim::NetPeer> peer) {
                 server_side = std::move(peer);
               }).ok()) {
    state.SkipWithError("listen failed");
    return;
  }
  auto client = network.Connect("srv");
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  simulator.Run();
  std::uint64_t received = 0;
  server_side->SetReceiveHandler(
      [&received](const support::SharedBytes&) { ++received; });

  const support::SharedBytes payload(support::Bytes(256, 0xAB));
  for (auto _ : state) {
    std::thread producer([&]() {
      for (std::size_t i = 0; i < batch; ++i) {
        (void)(*client)->Send(payload);  // refcount bump, no copy
      }
    });
    producer.join();
    simulator.Run();
  }
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_StagedSendDrain)->Arg(4096)->UseRealTime();

// The lane engine under a lane-local load: `batch` seed events spread
// round-robin over the lanes, each chaining three intra-lane
// reschedules.  A 1 ms lookahead bounds the conservative windows, so a
// run executes thousands of window/barrier cycles — the measured rate
// prices window composition, parallel lane execution and the merge
// barrier, on top of the same wheel operations the serial rows measure.
void BM_LaneWindowedFire(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  sim::Simulator simulator;
  if (lanes > 1) {
    sim::LaneOptions options;
    options.lanes = lanes;
    options.lookahead = sim::kMillisecond;
    simulator.ConfigureLanes(options);
  }
  DelayStream delays;
  std::atomic<std::uint64_t> fired{0};  // lanes fire concurrently
  struct Hop {
    sim::Simulator* simulator;
    std::atomic<std::uint64_t>* fired;
    int hops;
    void operator()() const {
      fired->fetch_add(1, std::memory_order_relaxed);
      if (hops > 0) {
        simulator->ScheduleAfter(sim::kMillisecond,
                                 Hop{simulator, fired, hops - 1});
      }
    }
  };
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      simulator.ScheduleAtLane(static_cast<std::uint32_t>(i % lanes),
                               simulator.Now() + delays.Next(),
                               Hop{&simulator, &fired, 3});
    }
    simulator.Run();
  }
  benchmark::DoNotOptimize(fired.load());
  state.counters["lanes"] = static_cast<double>(lanes);
  // Every seed event fires itself plus three chained hops.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch) * 4);
}

/// Parses a comma list of positive integers (empty on malformed input).
std::vector<std::int64_t> ParseLaneList(const std::string& csv) {
  std::vector<std::int64_t> values;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!token.empty()) {
      char* end = nullptr;
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || value <= 0 || value > 64) {
        return {};
      }
      values.push_back(value);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

}  // namespace
}  // namespace dacm::bench

int main(int argc, char** argv) {
  std::vector<std::int64_t> lanes = {1, 2, 4};
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--lanes=", 0) == 0) {
      lanes = dacm::bench::ParseLaneList(arg.substr(sizeof("--lanes=") - 1));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (lanes.empty()) {
    std::fprintf(stderr, "--lanes= needs a comma list of positive integers\n");
    return 1;
  }
  auto* windowed = benchmark::RegisterBenchmark(
                       "BM_LaneWindowedFire", dacm::bench::BM_LaneWindowedFire)
                       ->ArgNames({"batch", "lanes"})
                       ->UseRealTime();  // worker lanes burn CPU off-thread
  for (std::int64_t lane_count : lanes) windowed->Args({8192, lane_count});
  return dacm::bench::BenchMain(static_cast<int>(passthrough.size()),
                                passthrough.data());
}
