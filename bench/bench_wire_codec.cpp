// WIRE — serialization + integrity hot paths.
//
// Every deploy crosses the wire twice (server -> ECM -> PIRTE) as a
// CRC-protected InstallationPackage, and every Type I exchange pays the
// PirteMessage codec.  These microbenchmarks isolate those costs from the
// surrounding stack so codec regressions are visible before they show up
// in the end-to-end figures:
//   * Crc32 throughput across payload sizes (bytes/s);
//   * InstallationPackage serialize and parse+verify round-trip;
//   * PirteMessage encode/decode;
//   * varint encode/decode sweep (the length-prefix workhorse).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <string>
#include <vector>

#include "fes/appgen.hpp"
#include "pirte/package.hpp"
#include "pirte/protocol.hpp"
#include "support/bytes.hpp"
#include "support/crc.hpp"

namespace dacm::bench {
namespace {

support::Bytes Payload(std::size_t size) {
  support::Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return data;
}

pirte::InstallationPackage SamplePackage(std::uint32_t ports) {
  pirte::InstallationPackage package;
  package.plugin_name = "bench";
  package.version = "1.0";
  for (std::uint32_t i = 0; i < ports; ++i) {
    package.pic.entries.push_back(
        {static_cast<std::uint8_t>(i), "port" + std::to_string(i),
         static_cast<std::uint8_t>(i),
         i % 2 == 0 ? pirte::PluginPortDirection::kRequired
                    : pirte::PluginPortDirection::kProvided});
    package.plc.entries.push_back(
        {static_cast<std::uint8_t>(i), pirte::PlcKind::kVirtual, 4, 0, "", 0});
  }
  package.binary = fes::MakeEchoPluginBinary();
  return package;
}

void BM_Crc32(benchmark::State& state) {
  const auto data = Payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::Crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(16 << 10)->Arg(256 << 10);

void BM_PackageSerialize(benchmark::State& state) {
  const auto package = SamplePackage(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.Serialize());
  }
}
BENCHMARK(BM_PackageSerialize)->Arg(1)->Arg(8)->Arg(32);

void BM_PackageParseAndVerify(benchmark::State& state) {
  const auto bytes =
      SamplePackage(static_cast<std::uint32_t>(state.range(0))).Serialize();
  for (auto _ : state) {
    auto package = pirte::InstallationPackage::Deserialize(bytes);
    benchmark::DoNotOptimize(package.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_PackageParseAndVerify)->Arg(1)->Arg(8)->Arg(32);

void BM_PirteMessageRoundTrip(benchmark::State& state) {
  pirte::PirteMessage message;
  message.type = pirte::MessageType::kInstallPackage;
  message.plugin_name = "bench";
  message.payload = Payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto bytes = message.Serialize();
    auto restored = pirte::PirteMessage::Deserialize(bytes);
    benchmark::DoNotOptimize(restored.ok());
  }
}
BENCHMARK(BM_PirteMessageRoundTrip)->Arg(16)->Arg(512)->Arg(8 << 10);

void BM_VarintRoundTrip(benchmark::State& state) {
  std::vector<std::uint32_t> values;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    values.push_back(i * 2654435761u);  // spans all encoded widths
  }
  for (auto _ : state) {
    support::ByteWriter writer;
    for (std::uint32_t v : values) writer.WriteVarU32(v);
    support::ByteReader reader(writer.bytes());
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      sum += *reader.ReadVarU32();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_VarintRoundTrip);

}  // namespace
}  // namespace dacm::bench

DACM_BENCH_MAIN();
