// FIG2-A — trusted-server deploy pipeline (paper Figure 2, §3.2.2).
//
// "The trusted server acts as a central point of intelligence, performing
// compatibility checks and generating the different types of context."
//
// Measures the full Deploy() pipeline — compatibility check, dependency /
// conflict check, PIC/PLC/ECC generation, package assembly, push — as a
// function of:
//   * the number of already-installed apps on the vehicle (id allocation
//     and dependency checks consult the InstalledAPP table);
//   * the app's plug-in count;
//   * the ports per plug-in.
//
// Expected shape: near-linear in plug-ins x ports; interactive (micro- to
// millisecond scale) even at hundreds of installed apps.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace dacm::bench {
namespace {

struct ServerBench {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMicrosecond};
  server::TrustedServer server{network, "srv:443"};
  server::UserId user = server::UserId::Invalid();
  std::unique_ptr<ScriptedVehicle> vehicle;

  ServerBench() {
    (void)server.Start();
    (void)server.UploadVehicleModel(fes::MakeRpiTestbedConf());
    user = *server.CreateUser("bench");
    (void)server.BindVehicle(user, "VIN-1", "rpi-testbed");
    vehicle = std::make_unique<ScriptedVehicle>(simulator, network, server, "VIN-1");
  }

  server::App SyntheticApp(const std::string& name, std::uint32_t plugins,
                           std::uint32_t ports) {
    fes::SyntheticAppParams params;
    params.name = name;
    params.vehicle_model = "rpi-testbed";
    params.plugin_count = plugins;
    params.ports_per_plugin = ports;
    params.target_ecu = 1;
    return fes::MakeSyntheticApp(params);
  }

  void Preinstall(int count, std::uint32_t ports_per_plugin = 2) {
    for (int i = 0; i < count; ++i) {
      const std::string name = "pre" + std::to_string(i);
      (void)server.UploadApp(SyntheticApp(name, 1, ports_per_plugin));
      (void)server.Deploy(user, "VIN-1", name);
      simulator.Run();  // scripted vehicle acks instantly
    }
  }
};

// Deploy+undeploy cycle cost vs installed-app count (id allocation scans
// the occupied-id set; dependency checks scan InstalledAPP).
void BM_DeployVsInstalledApps(benchmark::State& state) {
  ServerBench bench;
  bench.Preinstall(static_cast<int>(state.range(0)));
  (void)bench.server.UploadApp(bench.SyntheticApp("probe", 1, 2));
  for (auto _ : state) {
    (void)bench.server.Deploy(bench.user, "VIN-1", "probe");
    bench.simulator.Run();
    (void)bench.server.UninstallApp(bench.user, "VIN-1", "probe");
    bench.simulator.Run();
  }
  state.counters["installed_apps"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DeployVsInstalledApps)->Arg(1)->Arg(16)->Arg(64)->Arg(128);

// Deploy cost vs plug-in count of the deployed app (one package generated
// and pushed per plug-in).
void BM_DeployVsPluginCount(benchmark::State& state) {
  ServerBench bench;
  (void)bench.server.UploadApp(bench.SyntheticApp(
      "probe", static_cast<std::uint32_t>(state.range(0)), 2));
  for (auto _ : state) {
    (void)bench.server.Deploy(bench.user, "VIN-1", "probe");
    bench.simulator.Run();
    (void)bench.server.UninstallApp(bench.user, "VIN-1", "probe");
    bench.simulator.Run();
  }
  state.counters["plugins"] = static_cast<double>(state.range(0));
  state.counters["packages_pushed"] =
      static_cast<double>(bench.server.stats().packages_pushed);
}
BENCHMARK(BM_DeployVsPluginCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Deploy cost vs ports per plug-in (PIC/PLC size).
void BM_DeployVsPortCount(benchmark::State& state) {
  ServerBench bench;
  (void)bench.server.UploadApp(bench.SyntheticApp(
      "probe", 1, static_cast<std::uint32_t>(state.range(0))));
  for (auto _ : state) {
    (void)bench.server.Deploy(bench.user, "VIN-1", "probe");
    bench.simulator.Run();
    (void)bench.server.UninstallApp(bench.user, "VIN-1", "probe");
    bench.simulator.Run();
  }
  state.counters["ports_per_plugin"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DeployVsPortCount)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Rejected deploys (the compatibility checker's fast path): how quickly
// the server turns down an incompatible request.
void BM_DeployRejection(benchmark::State& state) {
  ServerBench bench;
  auto app = bench.SyntheticApp("needsvp", 1, 2);
  app.confs[0].required_virtual_ports = {"NoSuchPort"};
  (void)bench.server.UploadApp(app);
  for (auto _ : state) {
    auto status = bench.server.Deploy(bench.user, "VIN-1", "needsvp");
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_DeployRejection);

}  // namespace
}  // namespace dacm::bench

DACM_BENCH_MAIN();
