# Runs each bench binary with --json=<file> and aggregates the outputs
# into one JSON document: { "<bench name>": <google-benchmark output>, ... }.
#
# Invoked by the `bench_all` custom target (see CMakeLists.txt) as:
#   cmake -DBENCH_DIR=<bindir> -DBENCH_BINARIES=a,b,c -DOUTPUT=<path>
#         -P bench_all.cmake
#
# Intentionally a script, not a test: benchmarks are run manually or by the
# CI bench-smoke job, never as part of ctest.

if(NOT BENCH_DIR OR NOT BENCH_BINARIES OR NOT OUTPUT)
  message(FATAL_ERROR "bench_all.cmake needs -DBENCH_DIR, -DBENCH_BINARIES, -DOUTPUT")
endif()

string(REPLACE "," ";" _benches "${BENCH_BINARIES}")

set(_doc "{\n")
set(_sep "")
foreach(bench IN LISTS _benches)
  set(_json "${BENCH_DIR}/${bench}.json")
  message(STATUS "bench_all: running ${bench}")
  execute_process(
    COMMAND "${BENCH_DIR}/${bench}" "--json=${_json}"
    RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "bench_all: ${bench} exited with ${_rc}")
  endif()
  file(READ "${_json}" _content)
  string(STRIP "${_content}" _content)
  string(APPEND _doc "${_sep}\"${bench}\": ${_content}")
  set(_sep ",\n")
endforeach()
string(APPEND _doc "\n}\n")

file(WRITE "${OUTPUT}" "${_doc}")
message(STATUS "bench_all: wrote ${OUTPUT}")
