// ABL-2 — where should the intelligence live? (paper §3.2)
//
// The paper keeps context generation (unique-id assignment, connection
// resolution, ECC extraction) on the trusted server, "somewhat relieving
// the vehicular system from the burdens of plug-in configuration and
// supervision".  The ablation compares:
//
//   * server-side: the real GeneratePackages pipeline (hash-map id
//     bookkeeping, rich diagnostics, arbitrary app sizes);
//   * ECU-side baseline: the same resolution implemented the way a
//     resource-constrained ECU would have to run it — flat arrays, linear
//     scans, a fixed 256-bit id bitmap, no allocation-heavy diagnostics.
//
// Both produce identical contexts.  The point is not that one is slower —
// both are micro-scale — but that the ECU-side variant would run on every
// vehicle at install time *on the critical path of the VM task*, while the
// server amortizes it off-board, keeps the global view needed for
// dependency checking, and ships only finished contexts.
#include <benchmark/benchmark.h>

#include <array>

#include "bench_common.hpp"
#include "server/context_gen.hpp"

namespace dacm::bench {
namespace {

server::App MakeApp(std::uint32_t ports) {
  fes::SyntheticAppParams params;
  params.name = "app";
  params.vehicle_model = "rpi-testbed";
  params.plugin_count = 1;
  params.ports_per_plugin = ports;
  params.target_ecu = 1;
  return fes::MakeSyntheticApp(params);
}

// Server-side: the real pipeline.
void BM_ServerSideContextGen(benchmark::State& state) {
  const auto app = MakeApp(static_cast<std::uint32_t>(state.range(0)));
  const auto model = fes::MakeRpiTestbedConf();
  for (auto _ : state) {
    server::UsedIdMap used;
    auto packages =
        server::GeneratePackages(app, app.confs[0], model.sw, used);
    benchmark::DoNotOptimize(packages);
  }
  state.counters["ports"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ServerSideContextGen)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// ECU-side baseline: fixed-size structures, linear scans — the shape this
// logic would take inside the PIRTE if the server shipped raw SW confs
// instead of finished contexts.
struct EcuSideResolver {
  std::array<bool, 256> used{};

  support::Result<pirte::InstallationPackage> Resolve(
      const server::App& app, const server::SwConf& conf,
      const server::SystemSwConf& system_sw, const server::PluginDecl& plugin) {
    pirte::InstallationPackage package;
    package.plugin_name = plugin.name;
    package.version = app.version;
    for (const server::PluginPortDecl& port : plugin.ports) {
      // Linear probe for a free unique id.
      std::uint16_t id = 0;
      while (id < 256 && used[id]) ++id;
      if (id == 256) return support::ResourceExhausted("ids");
      used[id] = true;
      package.pic.entries.push_back({port.local_index, port.name,
                                     static_cast<std::uint8_t>(id),
                                     port.direction});
    }
    for (const server::ConnectionDecl& connection : conf.connections) {
      if (connection.plugin != plugin.name) continue;  // linear scan
      pirte::PlcEntry entry;
      entry.local_port = connection.local_port;
      switch (connection.target) {
        case server::ConnectionDecl::Target::kNone:
          entry.kind = pirte::PlcKind::kUnconnected;
          break;
        case server::ConnectionDecl::Target::kVirtualPort: {
          const auto* vp = system_sw.FindByName(connection.virtual_port_name);
          if (vp == nullptr) return support::Incompatible("vp");
          entry.kind = pirte::PlcKind::kVirtual;
          entry.virtual_port = vp->id;
          break;
        }
        default:
          // Peer/external targets need the global view only the server has;
          // the baseline cannot resolve them — precisely the limitation the
          // paper's design avoids.
          entry.kind = pirte::PlcKind::kUnconnected;
          break;
      }
      package.plc.entries.push_back(std::move(entry));
    }
    package.binary = plugin.binary;
    return package;
  }
};

void BM_EcuSideContextGen(benchmark::State& state) {
  const auto app = MakeApp(static_cast<std::uint32_t>(state.range(0)));
  const auto model = fes::MakeRpiTestbedConf();
  for (auto _ : state) {
    EcuSideResolver resolver;
    for (const auto& plugin : app.plugins) {
      auto package = resolver.Resolve(app, app.confs[0], model.sw, plugin);
      benchmark::DoNotOptimize(package);
    }
  }
  state.counters["ports"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EcuSideContextGen)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The part the ECU-side variant cannot amortize: repeated installs churn
// the id space.  K consecutive installs into one shared id map.
void BM_ServerSideIdChurn(benchmark::State& state) {
  const auto app = MakeApp(4);
  const auto model = fes::MakeRpiTestbedConf();
  const int installs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    server::UsedIdMap used;
    for (int i = 0; i < installs; ++i) {
      auto packages =
          server::GeneratePackages(app, app.confs[0], model.sw, used);
      benchmark::DoNotOptimize(packages);
    }
  }
  state.counters["installs"] = static_cast<double>(installs);
}
BENCHMARK(BM_ServerSideIdChurn)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace dacm::bench

DACM_BENCH_MAIN();
