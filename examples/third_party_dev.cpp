// Third-party development workflow — the ecosystem the paper motivates.
//
// "Thirdly, it would create a foundation for open innovation where an
// ecosystem of third party developers can develop new services that add to
// the value of the products." (§1)
//
// A developer who has never seen the vehicle's source code ships a cruise
// assistant using only the OEM's published interface (the SystemSW conf's
// virtual ports):
//
//   1. write plug-in behaviour in PVM assembly and assemble it;
//   2. declare ports and connections against the published virtual ports;
//   3. upload — and get rejected with a precise diagnostic for targeting a
//      virtual port the vehicle model does not expose;
//   4. fix the SW conf, redeploy, and watch the plug-in consume the
//      vehicle's speed feed (SpeedProv) and drive SpeedReq within the
//      OEM's guard limits.
//
// Run: ./build/examples/third_party_dev
#include <cstdio>

#include "fes/appgen.hpp"
#include "fes/testbed.hpp"
#include "vm/assembler.hpp"

using namespace dacm;

namespace {

// The cruise plug-in: every time a speed measurement arrives on P0, write
// a new speed request on P1 nudging the vehicle towards 60.
const char* kCruiseSource = R"(
  .entry on_data react
  react:
    READP 0        ; current speed, 4-byte LE, into r128..r131
    POP
    LOAD 128       ; low byte is enough for the demo range [0, 100]
    PUSH 60
    CMPLT
    JZ slower
    ; current < 60: request current+5
    LOAD 128
    PUSH 5
    ADD
    STORE 128
    JMP send
  slower:
    ; current >= 60: request current-5
    LOAD 128
    PUSH 5
    SUB
    STORE 128
  send:
    PUSH 0
    STORE 129      ; clear the upper bytes of the request
    PUSH 0
    STORE 130
    PUSH 0
    STORE 131
    WRITEP 1 4
    HALT
)";

server::App MakeCruiseApp(const std::string& speed_feed_port) {
  server::App app;
  app.name = "cruise";
  app.version = "1.0";
  app.developer = "third-party-gmbh";
  server::PluginDecl plugin;
  plugin.name = "cruise.ctrl";
  plugin.binary = fes::AssembleOrDie(kCruiseSource);
  plugin.ports = {{0, "speed_in", pirte::PluginPortDirection::kRequired},
                  {1, "speed_req", pirte::PluginPortDirection::kProvided}};
  app.plugins.push_back(std::move(plugin));
  server::SwConf conf;
  conf.vehicle_model = "rpi-testbed";
  conf.min_platform = "1.0";
  conf.placements = {{"cruise.ctrl", 2}};
  using Target = server::ConnectionDecl::Target;
  conf.connections.push_back(
      {"cruise.ctrl", 0, Target::kVirtualPort, speed_feed_port, "", 0, "", ""});
  conf.connections.push_back(
      {"cruise.ctrl", 1, Target::kVirtualPort, "SpeedReq", "", 0, "", ""});
  conf.required_virtual_ports = {speed_feed_port, "SpeedReq"};
  app.confs.push_back(std::move(conf));
  return app;
}

}  // namespace

int main() {
  std::printf("=== third-party developer workflow ===\n\n");

  auto created = fes::Figure3Testbed::Create();
  if (!created.ok()) return 1;
  auto& testbed = **created;
  if (!testbed.SetUp().ok()) return 1;

  std::printf("OEM published interface for model 'rpi-testbed':\n");
  for (const auto& vp : fes::MakeRpiTestbedConf().sw.virtual_ports) {
    std::printf("  V%u  %-18s type %u\n", vp.id, vp.name.c_str(), vp.kind);
  }

  // --- first attempt: against a port the OEM never published ------------------
  std::printf("\nDeveloper uploads 'cruise' v1.0 targeting 'SpeedFeed'...\n");
  if (!testbed.server().UploadApp(MakeCruiseApp("SpeedFeed")).ok()) return 1;
  auto status = testbed.server().Deploy(testbed.user(), "VIN-0001", "cruise");
  std::printf("  server verdict: %s\n", status.ToString().c_str());

  // --- fixed against the published SpeedProv ------------------------------------
  std::printf("\nDeveloper fixes the SW conf to the published 'SpeedProv' (v1.1)...\n");
  auto fixed = MakeCruiseApp("SpeedProv");
  fixed.version = "1.1";
  if (!testbed.server().UploadApp(fixed).ok()) return 1;
  status = testbed.server().Deploy(testbed.user(), "VIN-0001", "cruise");
  if (!status.ok()) {
    std::fprintf(stderr, "  unexpected rejection: %s\n", status.ToString().c_str());
    return 1;
  }
  testbed.RunUntil(
      [&]() {
        auto state = testbed.server().AppState("VIN-0001", "cruise");
        return state.ok() && *state == server::InstallState::kInstalled;
      },
      5 * sim::kSecond);
  std::printf("  installed; plug-in runs against SpeedProv -> SpeedReq\n");

  // --- the control loop in action --------------------------------------------------
  // MeasureSpeed publishes the current speed every 100 ms on SpeedProv;
  // the cruise plug-in nudges SpeedReq towards 60 in steps of 5.
  std::printf("\nVehicle speed trajectory (sampled every 200 ms):\n  ");
  for (int i = 0; i < 10; ++i) {
    testbed.simulator().RunFor(200 * sim::kMillisecond);
    std::printf("%d ", testbed.last_speed());
  }
  std::printf("\n");
  std::printf("cruise converged to ~60: %s\n",
              testbed.last_speed() >= 55 && testbed.last_speed() <= 65 ? "yes"
                                                                       : "no");
  const auto& guard = *testbed.speed_guard();
  std::printf("guard on SpeedReq saw: passed=%llu dropped=%llu (all requests "
              "stayed in [0, 100])\n",
              static_cast<unsigned long long>(guard.stats().passed),
              static_cast<unsigned long long>(guard.stats().dropped_range));

  std::printf("\nDone.\n");
  return 0;
}
