// A federated embedded system at fleet scale.
//
// Three vehicles share one trusted server.  A telemetry APP is deployed
// over the air to each vehicle; its 'reporter' plug-in publishes a counter
// through an outbound external connection (ECC) to a fleet dashboard — an
// external FES participant, like the paper's smart phone but aggregating
// data *from* the vehicles instead of commanding them.
//
// Demonstrates: per-vehicle deployment isolation, ECC outbound routing,
// and the server's single point of intelligence serving a whole fleet.
//
// Run: ./build/examples/fes_fleet
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "fes/appgen.hpp"
#include "fes/device.hpp"
#include "fes/testbed.hpp"
#include "fes/vehicle.hpp"

using namespace dacm;

int main() {
  std::printf("=== federated fleet telemetry ===\n\n");

  sim::Simulator simulator;
  sim::Network network(simulator, 10 * sim::kMillisecond);

  server::TrustedServer server(network, "fleet-server:443");
  if (!server.Start().ok()) return 1;
  if (!server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok()) return 1;

  // The dashboard: an external device every vehicle's ECM will connect to.
  fes::ExternalDevice dashboard(network, "dashboard:80");
  if (!dashboard.Start().ok()) return 1;
  std::map<std::uint8_t, int> histogram;  // last counter value per source is
  std::uint64_t frames = 0;               // not attributable on the wire, so
  dashboard.SetFrameHandler(              // we count frames + values instead.
      [&](const std::string& id, const support::Bytes& payload) {
        if (id == "Telemetry" && !payload.empty()) {
          ++frames;
          ++histogram[payload[0]];
        }
      });

  // --- assemble the fleet -----------------------------------------------------
  const char* vins[] = {"VIN-A", "VIN-B", "VIN-C"};
  std::vector<std::unique_ptr<fes::Vehicle>> fleet;
  for (const char* vin : vins) {
    auto vehicle = std::make_unique<fes::Vehicle>(
        simulator, network, fes::VehicleParams{vin, "rpi-testbed", 500'000});
    fes::Ecu& ecu1 = vehicle->AddEcu(1, std::string(vin) + ".ECU1");
    auto p1 = vehicle->AddPluginSwc(ecu1, "PIRTE1");
    if (!p1.ok()) return 1;
    (*p1)->SetStepPeriod(100 * sim::kMillisecond);  // telemetry cadence
    if (!vehicle->DesignateEcm(**p1, "fleet-server:443").ok()) return 1;
    if (!vehicle->Finalize().ok()) return 1;
    fleet.push_back(std::move(vehicle));
  }
  simulator.RunFor(2 * sim::kSecond);
  for (const char* vin : vins) {
    std::printf("  %s online: %s\n", vin, server.VehicleOnline(vin) ? "yes" : "no");
  }

  // --- developer upload: the telemetry APP -------------------------------------
  server::App app;
  app.name = "telemetry";
  app.version = "1.0";
  app.developer = "fleet-services-inc";
  server::PluginDecl plugin;
  plugin.name = "reporter";
  plugin.binary = fes::MakeCounterPluginBinary();  // step: counter -> port 0
  plugin.ports = {{0, "count", pirte::PluginPortDirection::kProvided}};
  app.plugins.push_back(std::move(plugin));
  server::SwConf conf;
  conf.vehicle_model = "rpi-testbed";
  conf.placements = {{"reporter", 1}};
  server::ConnectionDecl out;
  out.plugin = "reporter";
  out.local_port = 0;
  out.target = server::ConnectionDecl::Target::kExternalOut;
  out.endpoint = "dashboard:80";
  out.message_id = "Telemetry";
  conf.connections.push_back(out);
  app.confs.push_back(std::move(conf));
  if (!server.UploadApp(app).ok()) return 1;
  std::printf("\nUploaded app 'telemetry' (reporter plug-in, outbound ECC to dashboard).\n");

  // --- per-vehicle users deploy over the air ------------------------------------
  std::vector<server::UserId> users;
  const char* names[] = {"alice", "bob", "carol"};
  for (std::size_t i = 0; i < 3; ++i) {
    auto user = server.CreateUser(names[i]);
    if (!user.ok() || !server.BindVehicle(*user, vins[i], "rpi-testbed").ok()) return 1;
    users.push_back(*user);
  }

  // Stagger the roll-out; each vehicle starts reporting as soon as its own
  // deployment is acknowledged.
  for (std::size_t i = 0; i < 3; ++i) {
    if (auto status = server.Deploy(users[i], vins[i], "telemetry"); !status.ok()) {
      std::fprintf(stderr, "deploy to %s failed: %s\n", vins[i],
                   status.ToString().c_str());
      return 1;
    }
    simulator.RunFor(sim::kSecond);
    std::printf("  deployed to %s; fleet frames so far: %llu\n", vins[i],
                static_cast<unsigned long long>(frames));
  }

  // --- let the federation run ----------------------------------------------------
  simulator.RunFor(3 * sim::kSecond);

  std::printf("\nDashboard aggregated %llu telemetry frames from %zu connections.\n",
              static_cast<unsigned long long>(frames), dashboard.connections());
  std::printf("Counter-value histogram (value: frames): ");
  for (const auto& [value, count] : histogram) {
    std::printf("%u:%d ", value, count);
  }
  std::printf("\n\nPer-vehicle ECM stats:\n");
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& stats = fleet[i]->ecm()->ecm_stats();
    std::printf("  %s: external_out=%llu packages_local=%llu\n", vins[i],
                static_cast<unsigned long long>(stats.external_out),
                static_cast<unsigned long long>(stats.packages_local));
  }

  // One vehicle leaves the federation: uninstall only there.
  if (!server.UninstallApp(users[0], vins[0], "telemetry").ok()) return 1;
  simulator.RunFor(sim::kSecond);
  std::printf("\nAfter uninstalling from %s: installed=[", vins[0]);
  for (const char* vin : vins) {
    std::printf(" %s:%s", vin, server.AppState(vin, "telemetry").ok() ? "yes" : "no");
  }
  std::printf(" ]\n\nDone.\n");
  return 0;
}
