// Quickstart: the dynamic component model on a single ECU.
//
// This example builds the smallest useful dynamic-AUTOSAR system:
//
//   1. one simulated ECU (OSEK OS + CAN + COM + RTE);
//   2. one plug-in SW-C whose PIRTE exposes two virtual ports — ActReq
//      (Type III, plug-in -> built-in actuator) and SensorProv (Type III,
//      built-in sensor -> plug-in);
//   3. a "scaler" plug-in, assembled from PVM source at runtime, installed
//      *while the ECU is running* with a PIC/PLC context — no rebuild, no
//      reflash;
//   4. sensor data driven through the plug-in and observed at the actuator.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "bsw/nvm.hpp"
#include "fes/ecu.hpp"
#include "pirte/pirte.hpp"
#include "vm/assembler.hpp"

using namespace dacm;

namespace {

// The plug-in: on data at P0, double the (1-byte) value and emit it on P1.
// Environment access happens exclusively through port syscalls — the PVM
// has no way to touch anything outside its registers and ports.
const char* kScalerSource = R"(
  .entry on_data react
  react:
    READP 0        ; sensor byte lands in the I/O window (r128..)
    POP            ; discard the length
    LOAD 128
    PUSH 2
    MUL
    STORE 128
    WRITEP 1 1     ; one byte out on P1
    HALT
)";

}  // namespace

int main() {
  std::printf("=== dynamic-AUTOSAR quickstart ===\n\n");

  // --- 1. the static (OEM, design-time) part ---------------------------------
  sim::Simulator simulator;
  sim::CanBus bus(simulator, 500'000);
  fes::Ecu ecu(simulator, bus, /*id=*/1, "ECU1");
  rte::Rte& rte = ecu.ecu_rte();

  auto plug_swc = *rte.AddSwc("PluginSwc");
  auto app_swc = *rte.AddSwc("BuiltInApp");

  auto add_port = [&](rte::SwcId swc, const char* name, rte::PortDirection dir) {
    rte::PortConfig config;
    config.name = name;
    config.direction = dir;
    config.max_len = 64;
    return *rte.AddPort(swc, std::move(config));
  };

  // Type III SW-C ports of the plug-in SW-C, and their built-in peers.
  auto act_out = add_port(plug_swc, "ActReq", rte::PortDirection::kProvided);
  auto sensor_in = add_port(plug_swc, "SensorProv", rte::PortDirection::kRequired);
  auto actuator = add_port(app_swc, "Actuator", rte::PortDirection::kRequired);
  auto sensor = add_port(app_swc, "Sensor", rte::PortDirection::kProvided);
  (void)rte.ConnectLocal(act_out, actuator);
  (void)rte.ConnectLocal(sensor, sensor_in);

  // Built-in consumer: print whatever reaches the actuator.
  (void)rte.SetPortListener(actuator, [](std::span<const std::uint8_t> data) {
    std::printf("  [built-in] actuator <- %u\n", data.empty() ? 0u : data[0]);
  });

  // The PIRTE's static configuration: the exposed virtual-port API.
  pirte::PirteConfig config;
  config.name = "PIRTE1";
  config.ecu_id = 1;
  config.swc = plug_swc;
  {
    pirte::VirtualPortConfig v4;
    v4.id = 4;
    v4.name = "ActReq";
    v4.kind = pirte::VirtualPortKind::kTypeIII;
    v4.swc_out = act_out;
    config.virtual_ports.push_back(v4);
    pirte::VirtualPortConfig v6;
    v6.id = 6;
    v6.name = "SensorProv";
    v6.kind = pirte::VirtualPortKind::kTypeIII;
    v6.swc_in = sensor_in;
    config.virtual_ports.push_back(v6);
  }

  bsw::Nvm nvm;
  pirte::Pirte pirte(rte, &nvm, &ecu.dem(), std::move(config));
  if (!pirte.Init().ok() || !ecu.Start().ok()) {
    std::fprintf(stderr, "stack bring-up failed\n");
    return 1;
  }
  simulator.Run();
  std::printf("ECU1 is up; PIRTE exposes virtual ports V4=ActReq, V6=SensorProv.\n");
  std::printf("Installed plug-ins: %zu\n\n", pirte.InstalledPluginNames().size());

  // --- 2. the dynamic part: install a plug-in at runtime ---------------------
  auto program = vm::Assemble(kScalerSource);
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n", program.status().ToString().c_str());
    return 1;
  }

  pirte::InstallationPackage package;
  package.plugin_name = "scaler";
  package.version = "1.0";
  // PIC: developer port names bound to SW-C-unique ids (server-assigned).
  package.pic.entries = {
      {0, "sensor", 0, pirte::PluginPortDirection::kRequired},
      {1, "actuator", 1, pirte::PluginPortDirection::kProvided},
  };
  // PLC: "P0-V6, P1-V4" in the paper's notation.
  package.plc.entries = {
      {0, pirte::PlcKind::kVirtual, 6, 0, "", 0},
      {1, pirte::PlcKind::kVirtual, 4, 0, "", 0},
  };
  package.binary = program->Serialize();

  if (auto status = pirte.Install(package); !status.ok()) {
    std::fprintf(stderr, "install failed: %s\n", status.ToString().c_str());
    return 1;
  }
  simulator.Run();
  std::printf("Installed plug-in 'scaler' v1.0 with PLC {P0-V6, P1-V4}.\n\n");

  // --- 3. data flows through the dynamic component ----------------------------
  std::printf("Driving sensor values 3, 7, 21 through the plug-in:\n");
  for (std::uint8_t value : {3, 7, 21}) {
    std::printf("  [built-in] sensor  -> %u\n", value);
    (void)rte.Write(sensor, support::Bytes{value});
    simulator.Run();
  }

  // --- 4. and can be removed again --------------------------------------------
  (void)pirte.Uninstall("scaler");
  simulator.Run();
  std::printf("\nUninstalled 'scaler'; further sensor data stops at the PIRTE:\n");
  (void)rte.Write(sensor, support::Bytes{99});
  simulator.Run();

  const auto& stats = pirte.stats();
  std::printf("\nPIRTE stats: installs=%llu uninstalls=%llu routed=%llu "
              "vm_activations=%llu faults=%llu\n",
              static_cast<unsigned long long>(stats.installs),
              static_cast<unsigned long long>(stats.uninstalls),
              static_cast<unsigned long long>(stats.messages_routed),
              static_cast<unsigned long long>(stats.vm_activations),
              static_cast<unsigned long long>(stats.vm_faults));
  std::printf("\nDone.\n");
  return 0;
}
