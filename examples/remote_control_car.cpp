// The paper's Section 4 example application, end to end (Figure 3).
//
// A model car carries two RPi-class ECUs: ECU1 hosts the ECM (PIRTE1),
// ECU2 hosts a plug-in SW-C (PIRTE2) in front of the motor-control
// built-in software.  A smart phone federates with the car through the
// trusted server:
//
//   phone --'Wheels'/'Speed'--> ECM/COM --Type II over CAN--> OP --V4/V5--> motor
//
// The example walks the paper's whole life cycle: OEM + developer uploads,
// user binding, user-triggered deployment (PIC/PLC/ECC generation on the
// server), remote-control traffic, and finally uninstallation.
//
// Run: ./build/examples/remote_control_car
#include <cstdio>

#include "fes/testbed.hpp"

using namespace dacm;

namespace {

void PrintState(fes::Figure3Testbed& testbed, const char* when) {
  auto state = testbed.server().AppState("VIN-0001", "remote-car");
  const std::string name =
      state.ok() ? std::string(server::InstallStateName(*state)) : "(none)";
  std::printf("  [%s] server InstalledAPP row: %s\n", when, name.c_str());
}

}  // namespace

int main() {
  std::printf("=== remote-control car (paper Figure 3) ===\n\n");

  auto created = fes::Figure3Testbed::Create();
  if (!created.ok()) {
    std::fprintf(stderr, "testbed: %s\n", created.status().ToString().c_str());
    return 1;
  }
  auto& testbed = **created;
  std::printf("Federation up: trusted server %s, phone %s, vehicle VIN-0001\n",
              testbed.options().server_address.c_str(),
              testbed.options().phone_address.c_str());
  std::printf("ECM connected to server: %s\n\n",
              testbed.vehicle().ecm()->connected_to_server() ? "yes" : "no");

  // OEM uploads HW/SystemSW confs; developer uploads the RemoteCar APP;
  // the user account is bound to the vehicle.
  if (!testbed.SetUp().ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  std::printf("Uploads done: model 'rpi-testbed' (V0/V3 Type II, V4-V6 Type III),\n");
  std::printf("              app 'remote-car' {COM -> ECU1, OP -> ECU2}\n");
  PrintState(testbed, "before deploy");

  // User-triggered deployment: compatibility check, context generation,
  // package push, ack tracking.
  if (auto status = testbed.DeployRemoteCar(); !status.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", status.ToString().c_str());
    return 1;
  }
  PrintState(testbed, "after deploy ");
  std::printf("  COM installed on ECM (ECU1): %s\n",
              testbed.vehicle().ecm()->FindPlugin("COM") ? "yes" : "no");
  std::printf("  OP  installed on PIRTE2 (ECU2): %s\n\n",
              testbed.vehicle().FindPirte("PIRTE2")->FindPlugin("OP") ? "yes" : "no");

  // Remote control: the phone publishes 'Wheels' and 'Speed' FES frames.
  std::printf("Phone commands (payload -> motor control, end-to-end latency):\n");
  struct Command {
    const char* id;
    std::int32_t value;
  };
  const Command commands[] = {{"Wheels", -15}, {"Wheels", 0},  {"Wheels", 30},
                              {"Speed", 10},   {"Speed", 25},  {"Speed", 0}};
  for (const auto& command : commands) {
    support::Result<sim::SimTime> latency =
        command.id[0] == 'W' ? testbed.SendWheels(command.value)
                             : testbed.SendSpeed(command.value);
    if (!latency.ok()) {
      std::fprintf(stderr, "  %s=%d lost: %s\n", command.id, command.value,
                   latency.status().ToString().c_str());
      continue;
    }
    std::printf("  %-6s = %4d   %6.2f ms\n", command.id, command.value,
                static_cast<double>(*latency) / sim::kMillisecond);
  }
  std::printf("\nMotor-control observed state: wheels=%d speed=%d (%llu + %llu commands)\n",
              testbed.last_wheels(), testbed.last_speed(),
              static_cast<unsigned long long>(testbed.wheels_commands()),
              static_cast<unsigned long long>(testbed.speed_commands()));

  const auto& ecm_stats = testbed.vehicle().ecm()->ecm_stats();
  std::printf("ECM gateway stats: packages routed=%llu local=%llu acks fwd=%llu "
              "external in=%llu out=%llu\n",
              static_cast<unsigned long long>(ecm_stats.packages_routed),
              static_cast<unsigned long long>(ecm_stats.packages_local),
              static_cast<unsigned long long>(ecm_stats.acks_forwarded),
              static_cast<unsigned long long>(ecm_stats.external_in),
              static_cast<unsigned long long>(ecm_stats.external_out));

  // Uninstall through the server (dependency checks included).
  if (!testbed.server().UninstallApp(testbed.user(), "VIN-0001", "remote-car").ok()) {
    std::fprintf(stderr, "uninstall rejected\n");
    return 1;
  }
  testbed.RunUntil(
      [&]() { return !testbed.server().AppState("VIN-0001", "remote-car").ok(); },
      5 * sim::kSecond);
  PrintState(testbed, "after uninstall");
  std::printf("  plug-ins left on PIRTE2: %zu\n",
              testbed.vehicle().FindPirte("PIRTE2")->InstalledPluginNames().size());

  std::printf("\nDone.\n");
  return 0;
}
