// Over-the-air update + workshop restore + retrying fleet campaign.
//
// Walks the remaining life-cycle operations of the paper's Section 3.2.2:
//
//   1. deploy v1.0 of an app;
//   2. update: the paper mandates "a plug-in to be stopped before being
//      updated, and then restarted fresh" — modelled as uninstall + deploy
//      of the uploaded v2.0;
//   3. dependency guard: an add-on app that depends on the base app blocks
//      the base's uninstallation;
//   4. restore: after a (simulated) physical ECU replacement in a
//      workshop, the server re-pushes the recorded packages of every
//      plug-in placed on that ECU;
//   5. fleet scale-out: a retrying multi-wave campaign (CampaignEngine)
//      converges a 24-vehicle fleet over a flapping WAN with an offline
//      cohort, then a rollback campaign takes the app off again — the
//      convergence report prints waves, retries and the injected faults.
//
// Run: ./build/examples/ota_update
#include <algorithm>
#include <cstdio>

#include "fes/appgen.hpp"
#include "fes/fleet.hpp"
#include "fes/testbed.hpp"
#include "server/campaign.hpp"
#include "sim/fault.hpp"

using namespace dacm;

namespace {

void Show(fes::Figure3Testbed& testbed, const char* app, const char* when) {
  auto state = testbed.server().AppState("VIN-0001", app);
  const std::string name =
      state.ok() ? std::string(server::InstallStateName(*state)) : "(not installed)";
  std::printf("  [%-22s] %-10s: %s\n", when, app, name.c_str());
}

bool WaitInstalled(fes::Figure3Testbed& testbed, const char* app) {
  return testbed.RunUntil(
      [&]() {
        auto state = testbed.server().AppState("VIN-0001", app);
        return state.ok() && *state == server::InstallState::kInstalled;
      },
      5 * sim::kSecond);
}

void PrintCampaignReport(const char* what, server::CampaignEngine& engine,
                         server::CampaignId id) {
  auto snapshot = *engine.Snapshot(id);
  std::printf("  %s: %s after %zu wave(s), %llu push(es) for %zu vehicles\n",
              what, std::string(server::CampaignStatusName(snapshot.status)).c_str(),
              snapshot.waves_pushed,
              static_cast<unsigned long long>(snapshot.total_pushes),
              snapshot.rows);
  std::printf("    rows: done=%zu failed=%zu (pending=%zu pushed=%zu offline=%zu)\n",
              snapshot.done, snapshot.failed, snapshot.pending, snapshot.pushed,
              snapshot.offline);
  auto times = *engine.TimesToDone(id);
  if (!times.empty()) {
    std::sort(times.begin(), times.end());
    std::printf("    time-to-installed: median %.0f ms, worst %.0f ms (sim time)\n",
                static_cast<double>(times[times.size() / 2]) / sim::kMillisecond,
                static_cast<double>(times.back()) / sim::kMillisecond);
  }
}

// Section 5: a fleet-wide rollout that has to *converge*, not just push.
int RunRetryingCampaign() {
  std::printf("\n=== 5. retrying fleet campaign over a flapping WAN ===\n\n");

  sim::Simulator simulator;
  sim::Network network(simulator, sim::kMillisecond);
  server::TrustedServer server(network, "fleet:443", server::ServerOptions{4});
  if (!server.Start().ok()) return 1;
  if (!server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok()) return 1;
  auto user = server.CreateUser("fleet-ops");
  if (!user.ok()) return 1;

  fes::ScriptedFleetOptions fleet_options;
  fleet_options.vehicle_count = 24;
  fes::ScriptedFleet fleet(simulator, network, server, fleet_options);
  if (!fleet.BindAndConnect(*user).ok()) return 1;

  fes::SyntheticAppParams params;
  params.name = "nav-maps";
  params.vehicle_model = "rpi-testbed";
  params.plugin_count = 2;
  params.target_ecu = 1;
  if (!server.UploadApp(fes::MakeSyntheticApp(params)).ok()) return 1;

  // The fault matrix, drawn deterministically from one seed: a quarter of
  // the fleet is dark when the campaign starts, and the WAN flaps twice
  // mid-rollout.
  sim::FaultScenario faults(simulator, network, /*seed=*/42);
  faults.AddOfflineChurn(fleet, /*fraction=*/0.25, /*horizon=*/0,
                         100 * sim::kMillisecond, 300 * sim::kMillisecond);
  faults.AddRandomLinkFlaps(/*count=*/2, /*horizon=*/300 * sim::kMillisecond,
                            20 * sim::kMillisecond, 60 * sim::kMillisecond);
  std::printf("Injected faults (seed 42):\n");
  for (const sim::FaultEvent& event : faults.timeline()) {
    std::printf("  t=%4.0f ms  %s\n",
                static_cast<double>(event.at) / sim::kMillisecond,
                event.description.c_str());
  }

  server::RetryPolicy policy;
  policy.max_waves = 8;
  policy.settle_delay = 50 * sim::kMillisecond;
  policy.initial_backoff = 200 * sim::kMillisecond;

  server::CampaignEngine engine(simulator, server);
  auto deploy = engine.StartDeploy(*user, "nav-maps", fleet.vins(), policy);
  if (!deploy.ok()) return 1;
  simulator.Run();
  std::printf("\nConvergence report:\n");
  PrintCampaignReport("deploy nav-maps", engine, *deploy);
  const auto stats = server.stats();
  std::printf("    server: pushed=%llu repushes=%llu acks=%llu reaped=%llu\n",
              static_cast<unsigned long long>(stats.packages_pushed),
              static_cast<unsigned long long>(stats.repushes),
              static_cast<unsigned long long>(stats.acks_received),
              static_cast<unsigned long long>(stats.connections_reaped));

  // And back off again: a rollback campaign (batched uninstalls) on the
  // same fleet.
  auto rollback = engine.StartRollback(*user, "nav-maps", fleet.vins(), policy);
  if (!rollback.ok()) return 1;
  simulator.Run();
  PrintCampaignReport("rollback nav-maps", engine, *rollback);
  std::printf("    apps left on %s: %zu\n", fleet.vins()[0].c_str(),
              server.InstalledApps(fleet.vins()[0]).size());
  return 0;
}

}  // namespace

int main() {
  std::printf("=== OTA update / dependency guard / workshop restore ===\n\n");

  auto created = fes::Figure3Testbed::Create();
  if (!created.ok()) return 1;
  auto& testbed = **created;
  if (!testbed.SetUp().ok()) return 1;

  // --- 1. deploy v1.0 ----------------------------------------------------------
  if (!testbed.DeployRemoteCar().ok()) return 1;
  Show(testbed, "remote-car", "deployed v1.0");
  std::printf("  COM version on ECM: %s\n\n",
              testbed.vehicle().ecm()->FindPlugin("COM")->version().c_str());

  // --- 2. update to v2.0 ---------------------------------------------------------
  auto v2 = fes::MakeRemoteCarApp(testbed.options().phone_address);
  v2.version = "2.0";
  if (!testbed.server().UploadApp(v2).ok()) return 1;
  std::printf("Uploaded remote-car v2.0 (replaces stored v1.0).\n");

  if (!testbed.server().UninstallApp(testbed.user(), "VIN-0001", "remote-car").ok()) {
    return 1;
  }
  testbed.RunUntil(
      [&]() { return !testbed.server().AppState("VIN-0001", "remote-car").ok(); },
      5 * sim::kSecond);
  Show(testbed, "remote-car", "after uninstall");

  if (!testbed.DeployRemoteCar().ok()) return 1;
  Show(testbed, "remote-car", "redeployed");
  std::printf("  COM version on ECM: %s\n",
              testbed.vehicle().ecm()->FindPlugin("COM")->version().c_str());
  auto latency = testbed.SendWheels(42);
  std::printf("  control path intact: wheels=42 in %.2f ms\n\n",
              latency.ok() ? static_cast<double>(*latency) / sim::kMillisecond : -1.0);

  // --- 3. dependency guard ----------------------------------------------------------
  fes::SyntheticAppParams params;
  params.name = "lane-assist";
  params.vehicle_model = "rpi-testbed";
  params.target_ecu = 2;
  params.depends_on = {"remote-car"};
  if (!testbed.server().UploadApp(fes::MakeSyntheticApp(params)).ok()) return 1;
  if (!testbed.server().Deploy(testbed.user(), "VIN-0001", "lane-assist").ok()) return 1;
  WaitInstalled(testbed, "lane-assist");
  Show(testbed, "lane-assist", "deployed add-on");

  auto blocked = testbed.server().UninstallApp(testbed.user(), "VIN-0001", "remote-car");
  std::printf("  uninstall remote-car while lane-assist depends on it:\n    -> %s\n\n",
              blocked.ToString().c_str());

  // --- 4. workshop restore -----------------------------------------------------------
  // ECU2 is "replaced": its PIRTE loses all plug-ins (we simulate by
  // uninstalling locally, behind the server's back — exactly the state a
  // fresh ECU would be in).
  auto* pirte2 = testbed.vehicle().FindPirte("PIRTE2");
  for (const auto& name : pirte2->InstalledPluginNames()) {
    (void)pirte2->Uninstall(name);
  }
  std::printf("ECU2 replaced in the workshop; plug-ins on PIRTE2: %zu\n",
              pirte2->InstalledPluginNames().size());

  if (auto status = testbed.server().Restore(testbed.user(), "VIN-0001", 2);
      !status.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", status.ToString().c_str());
    return 1;
  }
  WaitInstalled(testbed, "remote-car");
  std::printf("Server restore re-pushed recorded packages for ECU2.\n");
  std::printf("  plug-ins on PIRTE2 after restore: %zu\n",
              pirte2->InstalledPluginNames().size());
  latency = testbed.SendWheels(7);
  std::printf("  control path intact: wheels=7 in %.2f ms\n",
              latency.ok() ? static_cast<double>(*latency) / sim::kMillisecond : -1.0);

  if (int rc = RunRetryingCampaign(); rc != 0) return rc;

  std::printf("\nDone.\n");
  return 0;
}
