// Over-the-air update + workshop restore.
//
// Walks the remaining life-cycle operations of the paper's Section 3.2.2:
//
//   1. deploy v1.0 of an app;
//   2. update: the paper mandates "a plug-in to be stopped before being
//      updated, and then restarted fresh" — modelled as uninstall + deploy
//      of the uploaded v2.0;
//   3. dependency guard: an add-on app that depends on the base app blocks
//      the base's uninstallation;
//   4. restore: after a (simulated) physical ECU replacement in a
//      workshop, the server re-pushes the recorded packages of every
//      plug-in placed on that ECU.
//
// Run: ./build/examples/ota_update
#include <cstdio>

#include "fes/appgen.hpp"
#include "fes/testbed.hpp"

using namespace dacm;

namespace {

void Show(fes::Figure3Testbed& testbed, const char* app, const char* when) {
  auto state = testbed.server().AppState("VIN-0001", app);
  const std::string name =
      state.ok() ? std::string(server::InstallStateName(*state)) : "(not installed)";
  std::printf("  [%-22s] %-10s: %s\n", when, app, name.c_str());
}

bool WaitInstalled(fes::Figure3Testbed& testbed, const char* app) {
  return testbed.RunUntil(
      [&]() {
        auto state = testbed.server().AppState("VIN-0001", app);
        return state.ok() && *state == server::InstallState::kInstalled;
      },
      5 * sim::kSecond);
}

}  // namespace

int main() {
  std::printf("=== OTA update / dependency guard / workshop restore ===\n\n");

  auto created = fes::Figure3Testbed::Create();
  if (!created.ok()) return 1;
  auto& testbed = **created;
  if (!testbed.SetUp().ok()) return 1;

  // --- 1. deploy v1.0 ----------------------------------------------------------
  if (!testbed.DeployRemoteCar().ok()) return 1;
  Show(testbed, "remote-car", "deployed v1.0");
  std::printf("  COM version on ECM: %s\n\n",
              testbed.vehicle().ecm()->FindPlugin("COM")->version().c_str());

  // --- 2. update to v2.0 ---------------------------------------------------------
  auto v2 = fes::MakeRemoteCarApp(testbed.options().phone_address);
  v2.version = "2.0";
  if (!testbed.server().UploadApp(v2).ok()) return 1;
  std::printf("Uploaded remote-car v2.0 (replaces stored v1.0).\n");

  if (!testbed.server().UninstallApp(testbed.user(), "VIN-0001", "remote-car").ok()) {
    return 1;
  }
  testbed.RunUntil(
      [&]() { return !testbed.server().AppState("VIN-0001", "remote-car").ok(); },
      5 * sim::kSecond);
  Show(testbed, "remote-car", "after uninstall");

  if (!testbed.DeployRemoteCar().ok()) return 1;
  Show(testbed, "remote-car", "redeployed");
  std::printf("  COM version on ECM: %s\n",
              testbed.vehicle().ecm()->FindPlugin("COM")->version().c_str());
  auto latency = testbed.SendWheels(42);
  std::printf("  control path intact: wheels=42 in %.2f ms\n\n",
              latency.ok() ? static_cast<double>(*latency) / sim::kMillisecond : -1.0);

  // --- 3. dependency guard ----------------------------------------------------------
  fes::SyntheticAppParams params;
  params.name = "lane-assist";
  params.vehicle_model = "rpi-testbed";
  params.target_ecu = 2;
  params.depends_on = {"remote-car"};
  if (!testbed.server().UploadApp(fes::MakeSyntheticApp(params)).ok()) return 1;
  if (!testbed.server().Deploy(testbed.user(), "VIN-0001", "lane-assist").ok()) return 1;
  WaitInstalled(testbed, "lane-assist");
  Show(testbed, "lane-assist", "deployed add-on");

  auto blocked = testbed.server().UninstallApp(testbed.user(), "VIN-0001", "remote-car");
  std::printf("  uninstall remote-car while lane-assist depends on it:\n    -> %s\n\n",
              blocked.ToString().c_str());

  // --- 4. workshop restore -----------------------------------------------------------
  // ECU2 is "replaced": its PIRTE loses all plug-ins (we simulate by
  // uninstalling locally, behind the server's back — exactly the state a
  // fresh ECU would be in).
  auto* pirte2 = testbed.vehicle().FindPirte("PIRTE2");
  for (const auto& name : pirte2->InstalledPluginNames()) {
    (void)pirte2->Uninstall(name);
  }
  std::printf("ECU2 replaced in the workshop; plug-ins on PIRTE2: %zu\n",
              pirte2->InstalledPluginNames().size());

  if (auto status = testbed.server().Restore(testbed.user(), "VIN-0001", 2);
      !status.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", status.ToString().c_str());
    return 1;
  }
  WaitInstalled(testbed, "remote-car");
  std::printf("Server restore re-pushed recorded packages for ECU2.\n");
  std::printf("  plug-ins on PIRTE2 after restore: %zu\n",
              pirte2->InstalledPluginNames().size());
  latency = testbed.SendWheels(7);
  std::printf("  control path intact: wheels=7 in %.2f ms\n",
              latency.ok() ? static_cast<double>(*latency) / sim::kMillisecond : -1.0);

  std::printf("\nDone.\n");
  return 0;
}
