// Workshop diagnostics: fault protection and the diagnostic trail.
//
// The paper (§3.1.1) requires the built-in software to "monitor the
// exposed API and provide fault protection mechanisms for the critical
// signals".  This example shows that machinery end to end:
//
//   1. deploy the remote-car app with OEM guards on the critical signals
//      (WheelsReq clamps to [-45, 45]; SpeedReq drops outside [0, 100]);
//   2. drive hostile traffic through the plug-ins — a compromised phone
//      sending absurd wheel angles and negative speeds, plus a trapping
//      plug-in;
//   3. read the vehicle out like a workshop tester: confirmed Dem events,
//      guard statistics, plug-in fault states.
//
// Run: ./build/examples/diagnostics
#include <cstdio>

#include "fes/appgen.hpp"
#include "fes/testbed.hpp"

using namespace dacm;

int main() {
  std::printf("=== workshop diagnostics ===\n\n");

  auto created = fes::Figure3Testbed::Create();
  if (!created.ok()) return 1;
  auto& testbed = **created;
  if (!testbed.SetUp().ok() || !testbed.DeployRemoteCar().ok()) return 1;
  std::printf("remote-car deployed; guards armed: WheelsReq clamp [-45,45], "
              "SpeedReq drop [0,100]\n\n");

  // --- hostile traffic ----------------------------------------------------------
  std::printf("Phone sends: wheels 30, wheels 9000, speed 50, speed -200, speed 80\n");
  (void)testbed.SendWheels(30);
  (void)testbed.SendWheels(9000);   // clamped to 45
  (void)testbed.SendSpeed(50);
  (void)testbed.phone().Send("Speed", fes::EncodeControl(-200));  // dropped
  testbed.simulator().RunFor(200 * sim::kMillisecond);
  (void)testbed.SendSpeed(80);

  std::printf("Motor control observed: wheels=%d (clamped), speed=%d "
              "(the -200 never arrived)\n\n",
              testbed.last_wheels(), testbed.last_speed());

  // --- a trapping plug-in on ECU2 --------------------------------------------------
  server::App bomb;
  bomb.name = "bomb";
  bomb.version = "1.0";
  server::PluginDecl plugin;
  plugin.name = "bomb.p0";
  plugin.binary = fes::MakeTrapPluginBinary();
  plugin.ports = {{0, "in", pirte::PluginPortDirection::kRequired}};
  bomb.plugins.push_back(std::move(plugin));
  server::SwConf conf;
  conf.vehicle_model = "rpi-testbed";
  conf.placements = {{"bomb.p0", 2}};
  bomb.confs.push_back(std::move(conf));
  (void)testbed.server().UploadApp(bomb);
  (void)testbed.server().Deploy(testbed.user(), "VIN-0001", "bomb");
  testbed.RunUntil(
      [&]() {
        auto state = testbed.server().AppState("VIN-0001", "bomb");
        return state.ok() && *state == server::InstallState::kInstalled;
      },
      5 * sim::kSecond);
  auto* pirte2 = testbed.vehicle().FindPirte("PIRTE2");
  // Poke the bomb: its on_data handler TRAPs immediately.
  auto* instance = pirte2->FindPlugin("bomb.p0");
  if (instance != nullptr && !instance->ports().empty()) {
    (void)pirte2->DeliverToPluginPortByUnique(instance->ports()[0].unique_id,
                                              support::Bytes{1});
    testbed.simulator().RunFor(100 * sim::kMillisecond);
  }

  // --- the workshop readout -----------------------------------------------------------
  auto* ecu2 = testbed.vehicle().FindEcu(2);
  std::printf("--- ECU2 diagnostic readout -------------------------------\n");
  std::printf("confirmed events:\n");
  for (const auto& name : ecu2->dem().ConfirmedEventNames()) {
    std::printf("  DTC  %s\n", name.c_str());
  }
  std::printf("\nguard statistics:\n");
  const auto& wheels = testbed.wheels_guard()->stats();
  const auto& speed = testbed.speed_guard()->stats();
  std::printf("  WheelsReq: passed=%llu clamped=%llu\n",
              static_cast<unsigned long long>(wheels.passed),
              static_cast<unsigned long long>(wheels.clamped));
  std::printf("  SpeedReq : passed=%llu dropped=%llu\n",
              static_cast<unsigned long long>(speed.passed),
              static_cast<unsigned long long>(speed.dropped_range));
  std::printf("\nplug-in states on PIRTE2:\n");
  for (const auto& name : pirte2->InstalledPluginNames()) {
    const auto* plugin_instance = pirte2->FindPlugin(name);
    std::printf("  %-8s v%s  %s%s\n", name.c_str(),
                plugin_instance->version().c_str(),
                std::string(PluginStateName(plugin_instance->state())).c_str(),
                plugin_instance->faults() > 0
                    ? ("  (last fault: " + plugin_instance->last_fault() + ")").c_str()
                    : "");
  }
  std::printf("\nPIRTE2 stats: routed=%llu guard_drops=%llu vm_faults=%llu\n",
              static_cast<unsigned long long>(pirte2->stats().messages_routed),
              static_cast<unsigned long long>(pirte2->stats().guard_drops),
              static_cast<unsigned long long>(pirte2->stats().vm_faults));

  // The control path survived everything above.
  auto latency = testbed.SendWheels(-10);
  std::printf("\ncontrol path after the chaos: wheels=-10 in %.2f ms — %s\n",
              latency.ok() ? static_cast<double>(*latency) / sim::kMillisecond : -1.0,
              latency.ok() ? "alive" : "DEAD");
  std::printf("\nDone.\n");
  return 0;
}
