// Campaign flight report — the observability stack end to end.
//
// Runs one seeded faulted OTA campaign (200 vehicles, 25% offline churn,
// a couple of WAN flaps) with the sim-time tracer and the metrics
// registry armed, then reconstructs the "flight" from the recorded
// telemetry alone:
//
//   * the wave timeline (campaign.wave instants: when each retry wave
//     fired and what it pushed / skipped),
//   * row-state transitions per wave (pushed / offline / rejected /
//     already-done), plus a per-vehicle sample,
//   * per-wave push->ack round-trip quantiles (deploy.roundtrip spans
//     bucketed by wave window through a log2 histogram),
//   * the Prometheus exposition of the fleet metric families.
//
// The full Chrome trace is written to flight_report_trace.json — open it
// at https://ui.perfetto.dev to see the sim thread and each shard worker
// as named tracks.
//
// Run: ./build/examples/example_telemetry_flight_report
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fes/appgen.hpp"
#include "fes/fleet.hpp"
#include "fes/testbed.hpp"
#include "server/campaign.hpp"
#include "sim/fault.hpp"
#include "support/metrics.hpp"
#include "support/storage.hpp"
#include "support/trace.hpp"

using namespace dacm;

namespace {

/// Minimal scanner over the tracer's own export format (fixed key order,
/// no whitespace): pulls one u64 field out of an event window.
std::uint64_t FieldU64(const std::string& window, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = window.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(window.c_str() + at + needle.size(), nullptr, 10);
}

struct ParsedEvent {
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  std::string window;  // the event's JSON slice, for extra args
};

/// Every exported event named `name`, in trace order.
std::vector<ParsedEvent> EventsNamed(const std::string& json,
                                     const std::string& name) {
  std::vector<ParsedEvent> events;
  const std::string needle = "{\"name\":\"" + name + "\"";
  for (std::size_t at = json.find(needle); at != std::string::npos;
       at = json.find(needle, at + 1)) {
    // Our own events all carry args, so the window closes at the first
    // "}}" (args object + event object).
    const std::size_t end = json.find("}}", at);
    ParsedEvent event;
    event.window =
        json.substr(at, end == std::string::npos ? end : end + 2 - at);
    event.ts = FieldU64(event.window, "ts");
    event.dur = FieldU64(event.window, "dur");
    events.push_back(std::move(event));
  }
  return events;
}

double Ms(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }

}  // namespace

int main() {
  std::printf("=== campaign flight report ===\n\n");

  // Arm the flight recorder before anything moves.
  auto& tracer = support::Tracer::Instance();
  auto& metrics = support::Metrics::Instance();
  tracer.Enable(/*events_per_lane=*/1u << 14);

  sim::Simulator simulator;
  sim::Network network(simulator, sim::kMillisecond);
  // Durable status DB, synced every 16 paragraphs: the WAL append
  // instants land on the shard lanes and the fsync histogram gets
  // samples, so the report covers the persistence layer too.
  support::MemorySink status_log;
  server::TrustedServer server(
      network, "fleet-server:443",
      server::ServerOptions{/*shard_count=*/4, &status_log,
                            /*status_sync_every_n_frames=*/16});
  if (!server.Start().ok()) return 1;
  if (!server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok()) return 1;
  const server::UserId user = *server.CreateUser("ops");

  fes::ScriptedFleetOptions options;
  options.vehicle_count = 200;
  fes::ScriptedFleet fleet(simulator, network, server, options);
  if (!fleet.BindAndConnect(user).ok()) return 1;

  fes::SyntheticAppParams params;
  params.name = "nav-stack";
  params.vehicle_model = "rpi-testbed";
  params.plugin_count = 3;
  params.target_ecu = 1;
  if (!server.UploadApp(fes::MakeSyntheticApp(params)).ok()) return 1;

  // A quarter of the fleet is dark at push time; two WAN flaps land
  // during the retry window.  Seeded, so this report is reproducible.
  sim::FaultScenario faults(simulator, network, /*seed=*/0xF11617);
  faults.AddOfflineChurn(fleet, 0.25, /*horizon=*/0,
                         200 * sim::kMillisecond, 900 * sim::kMillisecond);
  faults.AddRandomLinkFlaps(2, 800 * sim::kMillisecond,
                            30 * sim::kMillisecond, 90 * sim::kMillisecond);

  server::CampaignEngine engine(simulator, server);
  server::RetryPolicy policy;
  policy.max_waves = 8;
  policy.settle_delay = 50 * sim::kMillisecond;
  policy.initial_backoff = 250 * sim::kMillisecond;
  policy.max_backoff = 2 * sim::kSecond;

  fleet.MarkCampaignEpoch();
  auto id = engine.StartDeploy(user, "nav-stack", fleet.vins(), policy);
  if (!id.ok()) return 1;
  simulator.Run();

  const auto snapshot = *engine.Snapshot(*id);
  const char* verdict =
      snapshot.status == server::CampaignStatus::kConverged ? "CONVERGED"
                                                            : "NOT CONVERGED";
  std::printf("campaign %s: %s after %llu wave(s), %llu push(es)\n\n",
              "nav-stack", verdict,
              static_cast<unsigned long long>(snapshot.waves_pushed),
              static_cast<unsigned long long>(snapshot.total_pushes));

  const std::string trace = tracer.ChromeJson();
  tracer.Disable();

  // --- act 1: the wave timeline ---------------------------------------------
  std::printf("--- wave timeline -------------------------------------------\n");
  const auto waves = EventsNamed(trace, "campaign.wave");
  const auto skips = EventsNamed(trace, "campaign.wave.skips");
  for (const ParsedEvent& wave : waves) {
    const std::uint64_t index = FieldU64(wave.window, "wave");
    std::printf("  wave %llu at t=%8.1f ms: pushed=%3llu offline=%3llu",
                static_cast<unsigned long long>(index), Ms(wave.ts),
                static_cast<unsigned long long>(FieldU64(wave.window, "pushed")),
                static_cast<unsigned long long>(
                    FieldU64(wave.window, "offline")));
    for (const ParsedEvent& skip : skips) {
      if (FieldU64(skip.window, "wave") != index) continue;
      std::printf(" rejected=%llu already_done=%llu",
                  static_cast<unsigned long long>(
                      FieldU64(skip.window, "rejected")),
                  static_cast<unsigned long long>(
                      FieldU64(skip.window, "already_done")));
    }
    std::printf("\n");
  }

  // --- act 2: row-state transitions -----------------------------------------
  std::printf("\n--- row states ----------------------------------------------\n");
  std::printf("  done=%llu failed=%llu (fleet of %zu)\n",
              static_cast<unsigned long long>(snapshot.done),
              static_cast<unsigned long long>(snapshot.failed),
              fleet.vins().size());
  for (const std::string& vin : {fleet.vins().front(), fleet.vins().back()}) {
    const auto* row = engine.FindRow(*id, vin);
    if (row == nullptr) continue;
    std::printf("  %s: %llu attempt(s)\n", vin.c_str(),
                static_cast<unsigned long long>(row->attempts));
  }

  // --- act 3: per-wave push->ack round-trip quantiles -----------------------
  std::printf("\n--- push->ack round trips, bucketed by wave ----------------\n");
  const auto roundtrips = EventsNamed(trace, "deploy.roundtrip");
  for (std::size_t w = 0; w < waves.size(); ++w) {
    const std::uint64_t begin = waves[w].ts;
    const std::uint64_t end =
        w + 1 < waves.size() ? waves[w + 1].ts : ~std::uint64_t{0};
    support::Histogram histogram;
    for (const ParsedEvent& trip : roundtrips) {
      if (trip.ts >= begin && trip.ts < end) histogram.Observe(trip.dur);
    }
    if (histogram.Count() == 0) continue;
    std::printf(
        "  wave %zu: %4llu acks  p50=%7.1f ms  p95=%7.1f ms  p99=%7.1f ms  "
        "max=%7.1f ms\n",
        w + 1, static_cast<unsigned long long>(histogram.Count()),
        histogram.Quantile(0.50) / 1000.0, histogram.Quantile(0.95) / 1000.0,
        histogram.Quantile(0.99) / 1000.0,
        static_cast<double>(histogram.Max()) / 1000.0);
  }

  // --- act 4: the metric families -------------------------------------------
  std::printf("\n--- metrics exposition (Prometheus text format) -------------\n");
  const std::string exposition = metrics.TextExposition();
  std::fwrite(exposition.data(), 1, exposition.size(), stdout);

  std::FILE* out = std::fopen("flight_report_trace.json", "wb");
  if (out != nullptr) {
    std::fwrite(trace.data(), 1, trace.size(), out);
    std::fclose(out);
    std::printf(
        "\nwrote %zu trace events to flight_report_trace.json "
        "(open at https://ui.perfetto.dev)\n",
        static_cast<std::size_t>(tracer.size()));
  }
  return snapshot.status == server::CampaignStatus::kConverged ? 0 : 1;
}
